//! The Phi-side DCFA library: the "DCFA IB IF" exposing the host's Verbs
//! interface in co-processor user space, plus the offloading send buffer.
//!
//! The command channel is fault-tolerant: every command carries a sequence
//! id and is retransmitted with exponential backoff when its reply times
//! out (the daemon deduplicates, so retransmits are answered from cache,
//! never re-executed). If retries exhaust — the delegation daemon crashed
//! or this client's lease was reclaimed — the context reconnects, re-greets
//! the daemon with its assigned client id and replays its *resource
//! journal*: surviving MRs are re-adopted ([`Cmd::AdoptMr`]), reclaimed
//! ones re-registered, QPs/CQs re-created. Each re-attach bumps a control
//! epoch the MPI core uses to invalidate MR/offload caches, so stale keys
//! never reach the wire.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fabric::{Buffer, Cluster, Domain, MemRef, NodeId};
use parking_lot::Mutex;
use scif::{ScifEndpoint, ScifError, ScifFabric};
use simcore::{Ctx, SimDuration};
use verbs::{
    CompletionQueue, IbFabric, MemoryRegion, MrKey, QueuePair, SharedReceiveQueue, VerbsContext,
};

use crate::daemon::{CtrlEvent, CtrlHook, CtrlOp, CtrlPerf, DcfaStats, PerfProbe, DCFA_PORT};
use crate::wire::{
    decode_reply_frame, encode_cmd_frame, err_code, Cmd, Reply, CLIENT_NONE, SEQ_NONE,
};

/// Errors surfaced by the DCFA user-space library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DcfaError {
    /// Couldn't reach the host delegation daemon.
    Connect(ScifError),
    /// The daemon has no MR under the given key (already deregistered, or
    /// reclaimed with an expired lease).
    UnknownKey,
    /// The host delegation process is out of memory (offload twin
    /// allocation failed).
    Oom,
    /// The daemon could not decode or accept the command.
    BadRequest,
    /// The command went unanswered through every retry and re-attach.
    Timeout,
    /// The daemon refused or failed a command with an unmapped code.
    Command { code: u8 },
    /// The daemon replied with something unexpected (protocol bug).
    Protocol,
}

impl DcfaError {
    fn from_code(code: u8) -> DcfaError {
        match code {
            err_code::OOM => DcfaError::Oom,
            err_code::UNKNOWN_KEY => DcfaError::UnknownKey,
            err_code::BAD_REQUEST => DcfaError::BadRequest,
            _ => DcfaError::Command { code },
        }
    }
}

impl std::fmt::Display for DcfaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DcfaError::Connect(e) => write!(f, "cannot reach DCFA daemon: {e}"),
            DcfaError::UnknownKey => write!(f, "DCFA daemon does not know this MR key"),
            DcfaError::Oom => write!(f, "DCFA daemon out of host memory"),
            DcfaError::BadRequest => write!(f, "DCFA daemon rejected the command"),
            DcfaError::Timeout => write!(f, "DCFA command timed out after retries"),
            DcfaError::Command { code } => write!(f, "DCFA command failed (code {code})"),
            DcfaError::Protocol => write!(f, "DCFA protocol violation"),
        }
    }
}

impl std::error::Error for DcfaError {}

/// Client-side knobs for the fault-tolerant command channel.
#[derive(Clone)]
pub struct DcfaConfig {
    /// How long to wait for a command reply before retransmitting.
    pub cmd_timeout: SimDuration,
    /// Retransmissions of one command before falling back to a full
    /// reconnect + journal replay.
    pub cmd_retry_limit: u32,
    /// Base retransmit backoff; doubles per attempt.
    pub cmd_backoff: SimDuration,
    /// Reconnect attempts during a re-attach (covers daemon respawn
    /// downtime); backoff between attempts grows linearly.
    pub reconnect_limit: u32,
    /// Base delay between reconnect attempts.
    pub reconnect_backoff: SimDuration,
    /// Period of the lease-renewal heartbeat sidecar; `None` disables it
    /// (a silent client relies on commands to renew its lease).
    pub heartbeat_interval: Option<SimDuration>,
    /// Counter sink shared with the node daemons (pass the handle returned
    /// by `spawn_daemons` to aggregate client retries/timeouts there).
    pub stats: DcfaStats,
    /// Control-plane event observer.
    pub hook: Option<CtrlHook>,
    /// Control-plane latency observer (command round-trips, offload-twin
    /// syncs). Fed into the MPI core's metrics hub when profiling is on.
    pub perf: Option<PerfProbe>,
}

impl fmt::Debug for DcfaConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DcfaConfig")
            .field("cmd_timeout", &self.cmd_timeout)
            .field("cmd_retry_limit", &self.cmd_retry_limit)
            .field("cmd_backoff", &self.cmd_backoff)
            .field("reconnect_limit", &self.reconnect_limit)
            .field("reconnect_backoff", &self.reconnect_backoff)
            .field("heartbeat_interval", &self.heartbeat_interval)
            .field("hook", &self.hook.as_ref().map(|_| ".."))
            .field("perf", &self.perf.as_ref().map(|_| ".."))
            .finish_non_exhaustive()
    }
}

impl Default for DcfaConfig {
    fn default() -> Self {
        DcfaConfig {
            cmd_timeout: SimDuration::from_micros(500),
            cmd_retry_limit: 3,
            cmd_backoff: SimDuration::from_micros(50),
            reconnect_limit: 8,
            reconnect_backoff: SimDuration::from_micros(50),
            heartbeat_interval: None,
            stats: DcfaStats::default(),
            hook: None,
            perf: None,
        }
    }
}

/// An offloading memory region (paper §IV-B4, Fig. 6): the Phi-resident
/// user buffer plus its host twin. Sends source the *host* buffer after a
/// DMA-engine sync, sidestepping the slow HCA-reads-Phi path.
pub struct OffloadMr {
    // (Debug below — MemoryRegion carries a SimEvent, so derive won't do.)
    /// The Phi-resident user buffer.
    pub phi: Buffer,
    /// The host twin, registered as an InfiniBand MR.
    pub host_mr: MemoryRegion,
}

impl std::fmt::Debug for OffloadMr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OffloadMr")
            .field("phi", &self.phi)
            .field("host", self.host_mr.buffer())
            .finish()
    }
}

/// One re-establishable resource in the client journal.
#[derive(Debug, Clone)]
enum JournalEntry {
    /// A registered MR: `key` for re-adoption, `buffer` for re-registration
    /// when the daemon-side object did not survive (lease reclaimed).
    Mr {
        key: u32,
        buffer: Buffer,
    },
    Cq,
    Qp,
}

struct ClientState {
    ep: ScifEndpoint,
    next_seq: u32,
    /// Daemon-assigned client id (stable across reconnects).
    client: u32,
    /// Last daemon incarnation observed in a reply.
    daemon_epoch: u32,
    /// Client control epoch: bumped on every re-attach; upper layers flush
    /// their MR/offload caches when it changes.
    ctrl_epoch: u64,
    journal: Vec<JournalEntry>,
}

/// The DCFA user-space context on a Xeon Phi co-processor: same interface
/// shape as the host Verbs library, with resource operations transparently
/// offloaded to the host delegation daemon over the command channel.
pub struct DcfaContext {
    // (Debug impl below.)
    vctx: VerbsContext,
    cluster: Arc<Cluster>,
    scif: Arc<ScifFabric>,
    cfg: DcfaConfig,
    state: Arc<Mutex<ClientState>>,
    hb_stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for DcfaContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DcfaContext")
            .field("node", &self.node())
            .finish_non_exhaustive()
    }
}

impl DcfaContext {
    /// Connect to the node's DCFA daemon and perform the hello handshake.
    /// Retries briefly to tolerate same-instant daemon startup.
    pub fn open(
        ctx: &mut Ctx,
        ib: &Arc<IbFabric>,
        scif_fabric: &Arc<ScifFabric>,
        node: NodeId,
    ) -> Result<DcfaContext, DcfaError> {
        Self::open_with(ctx, ib, scif_fabric, node, DcfaConfig::default())
    }

    /// [`DcfaContext::open`] with explicit command-channel tunables.
    pub fn open_with(
        ctx: &mut Ctx,
        ib: &Arc<IbFabric>,
        scif_fabric: &Arc<ScifFabric>,
        node: NodeId,
        cfg: DcfaConfig,
    ) -> Result<DcfaContext, DcfaError> {
        let ep = connect_retry(ctx, scif_fabric, node, &cfg)?;
        let dcfa = DcfaContext {
            vctx: VerbsContext::open(ib.clone(), node, Domain::Phi),
            cluster: ib.cluster().clone(),
            scif: scif_fabric.clone(),
            cfg,
            state: Arc::new(Mutex::new(ClientState {
                ep,
                next_seq: 1,
                client: CLIENT_NONE,
                daemon_epoch: 0,
                ctrl_epoch: 0,
                journal: Vec::new(),
            })),
            hb_stop: Arc::new(AtomicBool::new(false)),
        };
        match dcfa.command(
            ctx,
            Cmd::Hello {
                client: CLIENT_NONE,
            },
        )? {
            Reply::Hello { client } => dcfa.state.lock().client = client,
            Reply::Error { code } => return Err(DcfaError::from_code(code)),
            _ => return Err(DcfaError::Protocol),
        }
        dcfa.start_heartbeat(ctx);
        Ok(dcfa)
    }

    pub fn node(&self) -> NodeId {
        self.vctx.node()
    }

    /// Phi memory of this node.
    pub fn mem_ref(&self) -> MemRef {
        self.vctx.mem_ref()
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The underlying verbs context (data-path operations are direct).
    pub fn verbs(&self) -> &VerbsContext {
        &self.vctx
    }

    /// Daemon-assigned client id.
    pub fn client_id(&self) -> u32 {
        self.state.lock().client
    }

    /// Client control epoch: bumped on every re-attach (daemon restart or
    /// lease loss). Upper layers flush key-holding caches when it moves.
    pub fn ctrl_epoch(&self) -> u64 {
        self.state.lock().ctrl_epoch
    }

    /// Counter handle this context tallies retries/timeouts into.
    pub fn stats(&self) -> &DcfaStats {
        &self.cfg.stats
    }

    fn emit(&self, ev: CtrlEvent) {
        if let Some(hook) = &self.cfg.hook {
            hook(&ev);
        }
    }

    /// Spawn the lease-renewal sidecar, if configured. It shares the
    /// command endpoint (heartbeats are fire-and-forget, so it never
    /// consumes command replies) and follows reconnects.
    fn start_heartbeat(&self, ctx: &mut Ctx) {
        let Some(interval) = self.cfg.heartbeat_interval else {
            return;
        };
        let state = self.state.clone();
        let stop = self.hb_stop.clone();
        let name = format!("dcfa-hb-{}c{}", self.node(), self.client_id());
        ctx.scheduler().spawn_daemon(name, move |hctx| loop {
            hctx.sleep(interval);
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let ep = state.lock().ep.clone();
            ep.send(hctx, &encode_cmd_frame(SEQ_NONE, &Cmd::Heartbeat));
        });
    }

    // -- fault-tolerant command transport ---------------------------------

    fn alloc_seq(&self) -> u32 {
        let mut st = self.state.lock();
        let seq = st.next_seq;
        st.next_seq = st.next_seq.wrapping_add(1);
        seq
    }

    /// Issue one command reliably: retransmit on reply timeout, re-attach
    /// (reconnect + journal replay) when retries exhaust or the daemon
    /// reports our session gone.
    fn command(&self, ctx: &mut Ctx, cmd: Cmd) -> Result<Reply, DcfaError> {
        let started = self.cfg.perf.as_ref().map(|_| ctx.now());
        let result = self.command_inner(ctx, cmd);
        if let (Some(probe), Some(t0)) = (&self.cfg.perf, started) {
            probe(CtrlPerf {
                op: CtrlOp::Command,
                bytes: 0,
                ns: ctx.now().since(t0).as_nanos(),
            });
        }
        result
    }

    fn command_inner(&self, ctx: &mut Ctx, cmd: Cmd) -> Result<Reply, DcfaError> {
        let seq = self.alloc_seq();
        let mut reattach_budget = 2u32;
        loop {
            match self.command_attempts(ctx, seq, &cmd)? {
                Some(Reply::Error {
                    code: err_code::NO_SESSION,
                }) if !matches!(cmd, Cmd::Hello { .. }) => {
                    // Lease reclaimed (or daemon restarted) under us.
                }
                Some(reply) => return Ok(reply),
                None => {} // every retransmit timed out
            }
            if reattach_budget == 0 {
                return Err(DcfaError::Timeout);
            }
            reattach_budget -= 1;
            self.reattach(ctx)?;
        }
    }

    /// Send `cmd` under `seq` up to `1 + cmd_retry_limit` times on the
    /// current endpoint. `Ok(None)` means every attempt timed out.
    fn command_attempts(
        &self,
        ctx: &mut Ctx,
        seq: u32,
        cmd: &Cmd,
    ) -> Result<Option<Reply>, DcfaError> {
        let client = self.client_id();
        for attempt in 0..=self.cfg.cmd_retry_limit {
            if attempt > 0 {
                self.cfg.stats.update(|c| c.cmd_retries += 1);
                self.emit(CtrlEvent::CmdRetry {
                    client,
                    seq,
                    attempt,
                });
                // Exponential backoff before the retransmit.
                ctx.sleep(self.cfg.cmd_backoff * (1u64 << (attempt - 1).min(10)));
            }
            let ep = self.state.lock().ep.clone();
            ep.send(ctx, &encode_cmd_frame(seq, cmd));
            match self.await_reply(ctx, &ep, seq)? {
                Some((epoch, reply)) => {
                    self.state.lock().daemon_epoch = epoch;
                    return Ok(Some(reply));
                }
                None => {
                    self.cfg.stats.update(|c| c.cmd_timeouts += 1);
                    self.emit(CtrlEvent::CmdTimeout { client, seq });
                }
            }
        }
        Ok(None)
    }

    /// Wait up to `cmd_timeout` for the reply to `seq`, skipping stale
    /// duplicates left over from earlier retransmits.
    fn await_reply(
        &self,
        ctx: &mut Ctx,
        ep: &ScifEndpoint,
        seq: u32,
    ) -> Result<Option<(u32, Reply)>, DcfaError> {
        let deadline = ctx.now() + self.cfg.cmd_timeout;
        loop {
            if ctx.now() >= deadline {
                return Ok(None);
            }
            let Some(raw) = ep.recv_timeout(ctx, deadline - ctx.now()) else {
                return Ok(None);
            };
            match decode_reply_frame(&raw) {
                None => return Err(DcfaError::Protocol),
                Some((rseq, epoch, reply)) if rseq == seq => return Ok(Some((epoch, reply))),
                Some(_) => {} // duplicate reply to an abandoned attempt
            }
        }
    }

    /// Reconnect to the (possibly respawned) daemon and replay the journal:
    /// re-greet with our client id, re-adopt every journaled MR that
    /// survived on the HCA (re-register those that did not), re-create
    /// QPs/CQs, then bump the control epoch so caches flush stale keys.
    fn reattach(&self, ctx: &mut Ctx) -> Result<(), DcfaError> {
        let node = self.node();
        let mut last_err = DcfaError::Timeout;
        for attempt in 0..self.cfg.reconnect_limit {
            if attempt > 0 {
                ctx.sleep(self.cfg.reconnect_backoff * attempt as u64);
            }
            let local = MemRef {
                node,
                domain: Domain::Phi,
            };
            let ep = match self.scif.connect(ctx, local, Domain::Host, DCFA_PORT) {
                Ok(ep) => ep,
                Err(e) => {
                    last_err = DcfaError::Connect(e);
                    continue;
                }
            };
            self.state.lock().ep = ep;
            match self.replay_journal(ctx) {
                Ok(()) => return Ok(()),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn replay_journal(&self, ctx: &mut Ctx) -> Result<(), DcfaError> {
        let (client, journal) = {
            let st = self.state.lock();
            (st.client, st.journal.clone())
        };
        let hello_seq = self.alloc_seq();
        let id = match self.command_attempts(ctx, hello_seq, &Cmd::Hello { client })? {
            Some(Reply::Hello { client }) => client,
            Some(Reply::Error { code }) => return Err(DcfaError::from_code(code)),
            Some(_) => return Err(DcfaError::Protocol),
            None => return Err(DcfaError::Timeout),
        };
        self.state.lock().client = id;

        let journaled = journal.len() as u64;
        let mut replayed = 0u64;
        let mut new_journal = Vec::with_capacity(journal.len());
        for entry in journal {
            match entry {
                JournalEntry::Mr { key, buffer } => {
                    let seq = self.alloc_seq();
                    let adopted = self.command_attempts(ctx, seq, &Cmd::AdoptMr { key })?;
                    match adopted {
                        Some(Reply::MrKey { key }) => {
                            replayed += 1;
                            new_journal.push(JournalEntry::Mr { key, buffer });
                        }
                        Some(Reply::Error {
                            code: err_code::UNKNOWN_KEY,
                        }) => {
                            // The MR did not survive (lease reclaimed before
                            // we noticed): register it afresh. Holders of
                            // the old key rediscover it via cache
                            // invalidation.
                            let seq = self.alloc_seq();
                            let reg = self.command_attempts(
                                ctx,
                                seq,
                                &Cmd::RegMr {
                                    mem: buffer.mem,
                                    addr: buffer.addr,
                                    len: buffer.len,
                                },
                            )?;
                            match reg {
                                Some(Reply::MrKey { key }) => {
                                    replayed += 1;
                                    new_journal.push(JournalEntry::Mr { key, buffer });
                                }
                                Some(Reply::Error { code }) => {
                                    return Err(DcfaError::from_code(code))
                                }
                                Some(_) => return Err(DcfaError::Protocol),
                                None => return Err(DcfaError::Timeout),
                            }
                        }
                        Some(Reply::Error { code }) => return Err(DcfaError::from_code(code)),
                        Some(_) => return Err(DcfaError::Protocol),
                        None => return Err(DcfaError::Timeout),
                    }
                }
                JournalEntry::Cq => {
                    let seq = self.alloc_seq();
                    match self.command_attempts(ctx, seq, &Cmd::CreateCq)? {
                        Some(Reply::Ok) => {
                            replayed += 1;
                            new_journal.push(JournalEntry::Cq);
                        }
                        Some(Reply::Error { code }) => return Err(DcfaError::from_code(code)),
                        Some(_) => return Err(DcfaError::Protocol),
                        None => return Err(DcfaError::Timeout),
                    }
                }
                JournalEntry::Qp => {
                    let seq = self.alloc_seq();
                    match self.command_attempts(ctx, seq, &Cmd::CreateQp)? {
                        Some(Reply::Ok) => {
                            replayed += 1;
                            new_journal.push(JournalEntry::Qp);
                        }
                        Some(Reply::Error { code }) => return Err(DcfaError::from_code(code)),
                        Some(_) => return Err(DcfaError::Protocol),
                        None => return Err(DcfaError::Timeout),
                    }
                }
            }
        }
        let (epoch, ctrl_epoch) = {
            let mut st = self.state.lock();
            st.journal = new_journal;
            st.ctrl_epoch += 1;
            (st.daemon_epoch, st.ctrl_epoch)
        };
        let _ = ctrl_epoch;
        // (The daemon counts `reattaches` when it sees the re-Hello; we
        // only emit the richer client-side event.)
        self.emit(CtrlEvent::Reattach {
            client: id,
            epoch,
            journaled,
            replayed,
        });
        Ok(())
    }

    // -- resource operations ----------------------------------------------

    /// Register a Phi-resident buffer as an InfiniBand memory region. The
    /// CMD client translates the buffer's pages to physical addresses and
    /// offloads the registration to the host daemon — this is why Phi-side
    /// registration "is much more expensive than that on the host"
    /// (§IV-B3), motivating DCFA-MPI's buffer cache pool.
    pub fn reg_mr(&self, ctx: &mut Ctx, buffer: Buffer) -> Result<MemoryRegion, DcfaError> {
        let cost = &self.cluster.config().cost;
        // Virtual→physical translation of every page, on a slow Phi core.
        ctx.sleep(cost.cpu_op(Domain::Phi) + cost.cmd_translate_per_page * buffer.pages());
        match self.command(
            ctx,
            Cmd::RegMr {
                mem: buffer.mem,
                addr: buffer.addr,
                len: buffer.len,
            },
        )? {
            Reply::MrKey { key } => {
                let mr = self
                    .vctx
                    .fabric()
                    .mr_handle(MrKey(key))
                    .ok_or(DcfaError::Protocol)?;
                self.state.lock().journal.push(JournalEntry::Mr {
                    key,
                    buffer: buffer.clone(),
                });
                Ok(mr)
            }
            Reply::Error { code } => Err(DcfaError::from_code(code)),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// Deregister a memory region through the daemon.
    pub fn dereg_mr(&self, ctx: &mut Ctx, mr: &MemoryRegion) -> Result<(), DcfaError> {
        let key = mr.key().0;
        let result = match self.command(ctx, Cmd::DeregMr { key })? {
            Reply::Ok => Ok(()),
            Reply::Error { code } => Err(DcfaError::from_code(code)),
            _ => Err(DcfaError::Protocol),
        };
        // Either way the resource is gone; stop journaling it.
        self.state
            .lock()
            .journal
            .retain(|e| !matches!(e, JournalEntry::Mr { key: k, .. } if *k == key));
        result
    }

    /// Create a completion queue (resource setup offloaded; the CQ itself
    /// lives in Phi memory and is polled directly).
    pub fn create_cq(&self, ctx: &mut Ctx) -> Result<CompletionQueue, DcfaError> {
        match self.command(ctx, Cmd::CreateCq)? {
            Reply::Ok => {
                self.state.lock().journal.push(JournalEntry::Cq);
                Ok(self.vctx.create_cq())
            }
            Reply::Error { code } => Err(DcfaError::from_code(code)),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// Create a reliable-connected QP. Resource initialization runs on the
    /// host; posts are issued from the Phi directly to the HCA.
    pub fn create_qp(
        &self,
        ctx: &mut Ctx,
        send_cq: &CompletionQueue,
        recv_cq: &CompletionQueue,
    ) -> Result<QueuePair, DcfaError> {
        match self.command(ctx, Cmd::CreateQp)? {
            Reply::Ok => {
                self.state.lock().journal.push(JournalEntry::Qp);
                Ok(self.vctx.create_qp(send_cq, recv_cq))
            }
            Reply::Error { code } => Err(DcfaError::from_code(code)),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// Create a shared receive queue. Queue-object setup is offloaded to
    /// the host like a CQ; posts are issued from the Phi directly.
    pub fn create_srq(&self, ctx: &mut Ctx) -> Result<SharedReceiveQueue, DcfaError> {
        match self.command(ctx, Cmd::CreateCq)? {
            Reply::Ok => {
                self.state.lock().journal.push(JournalEntry::Cq);
                Ok(self.vctx.create_srq())
            }
            Reply::Error { code } => Err(DcfaError::from_code(code)),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// Create a reliable-connected QP attached to a shared receive queue.
    pub fn create_qp_with_srq(
        &self,
        ctx: &mut Ctx,
        send_cq: &CompletionQueue,
        recv_cq: &CompletionQueue,
        srq: &SharedReceiveQueue,
    ) -> Result<QueuePair, DcfaError> {
        match self.command(ctx, Cmd::CreateQp)? {
            Reply::Ok => {
                self.state.lock().journal.push(JournalEntry::Qp);
                Ok(self.vctx.create_qp_with_srq(send_cq, recv_cq, srq))
            }
            Reply::Error { code } => Err(DcfaError::from_code(code)),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// `reg_offload_mr`: allocate + register a host twin for `phi_buffer`
    /// (paper §IV-B4). Subsequent sends can source the host twin at full
    /// host DMA speed after a [`DcfaContext::sync_offload_mr`]. Twins are
    /// deliberately *not* journaled: they live in the delegation process's
    /// address space and die with it, so after a re-attach callers simply
    /// create fresh ones (or degrade to direct sends).
    pub fn reg_offload_mr(
        &self,
        ctx: &mut Ctx,
        phi_buffer: &Buffer,
    ) -> Result<OffloadMr, DcfaError> {
        assert_eq!(
            phi_buffer.mem.node,
            self.node(),
            "offload twin must be node-local"
        );
        match self.command(
            ctx,
            Cmd::RegOffloadMr {
                len: phi_buffer.len,
            },
        )? {
            Reply::Offload { key, .. } => {
                let host_mr = self
                    .vctx
                    .fabric()
                    .mr_handle(MrKey(key))
                    .ok_or(DcfaError::Protocol)?;
                Ok(OffloadMr {
                    phi: phi_buffer.clone(),
                    host_mr,
                })
            }
            Reply::Error { code } => Err(DcfaError::from_code(code)),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// `sync_offload_mr`: DMA the latest bytes `[offset, offset+len)` from
    /// the Phi buffer into its host twin. Blocks until the host twin is
    /// up to date ("data must be synchronized into the corresponding host
    /// buffer using the DMA engine" before posting the send).
    pub fn sync_offload_mr(&self, ctx: &mut Ctx, omr: &OffloadMr, offset: u64, len: u64) {
        let started = self.cfg.perf.as_ref().map(|_| ctx.now());
        let src = omr.phi.slice(offset, len);
        let dst = omr.host_mr.buffer().slice(offset, len);
        let t = self.cluster.pci_dma(&src, &dst, ctx.now());
        ctx.wait_reason(&t.completion, "sync_offload_mr");
        if let (Some(probe), Some(t0)) = (&self.cfg.perf, started) {
            probe(CtrlPerf {
                op: CtrlOp::OffloadSync,
                bytes: len,
                ns: ctx.now().since(t0).as_nanos(),
            });
        }
    }

    /// `dereg_offload_mr`: destroy the Phi-side descriptor, deregister the
    /// host MR and free the host twin. Idempotent: a twin the daemon
    /// already reclaimed (crash or expired lease) tears down as `Ok`.
    pub fn dereg_offload_mr(&self, ctx: &mut Ctx, omr: OffloadMr) -> Result<(), DcfaError> {
        match self.command(
            ctx,
            Cmd::DeregOffloadMr {
                key: omr.host_mr.key().0,
            },
        )? {
            Reply::Ok => Ok(()),
            Reply::Error { code } => Err(DcfaError::from_code(code)),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// Arm a link-fault plan on the cluster fabric through the host
    /// daemon. Lets a Phi-resident test harness schedule transport faults
    /// (consumed by the HCA model on matching posted operations) without
    /// any host-side assist code.
    pub fn inject_fault(&self, ctx: &mut Ctx, fault: fabric::LinkFault) -> Result<(), DcfaError> {
        match self.command(ctx, Cmd::InjectFault(fault))? {
            Reply::Ok => Ok(()),
            Reply::Error { code } => Err(DcfaError::from_code(code)),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// Tell the daemon this client is going away (handler exits) and stop
    /// the heartbeat sidecar.
    pub fn close(&self, ctx: &mut Ctx) {
        self.hb_stop.store(true, Ordering::Relaxed);
        let _ = self.command(ctx, Cmd::Bye);
        self.state.lock().journal.clear();
    }

    /// Fail-stop teardown: silence the heartbeat sidecar with *no*
    /// goodbye handshake. The daemon only finds out through lease
    /// expiry — the reaper then reclaims the session and its objects,
    /// exactly as it would for a really crashed card.
    pub fn abandon(&self) {
        self.hb_stop.store(true, Ordering::Relaxed);
    }
}

/// Initial connect with retry: tolerates same-instant daemon startup and
/// short daemon downtime.
fn connect_retry(
    ctx: &mut Ctx,
    scif_fabric: &Arc<ScifFabric>,
    node: NodeId,
    cfg: &DcfaConfig,
) -> Result<ScifEndpoint, DcfaError> {
    let local = MemRef {
        node,
        domain: Domain::Phi,
    };
    let mut last_err = None;
    for attempt in 0..cfg.reconnect_limit.max(1) {
        if attempt > 0 {
            ctx.sleep(cfg.reconnect_backoff * attempt as u64);
        } else {
            // Give a same-instant daemon spawn a chance to listen first.
            ctx.sleep(SimDuration::from_micros(1));
        }
        match scif_fabric.connect(ctx, local, Domain::Host, DCFA_PORT) {
            Ok(ep) => return Ok(ep),
            Err(e) => last_err = Some(e),
        }
    }
    Err(DcfaError::Connect(last_err.unwrap()))
}
