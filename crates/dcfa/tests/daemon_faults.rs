//! Control-plane fault tolerance: daemon crashes mid-command, dropped and
//! delayed replies, lease reclamation of dead clients, and journal-replay
//! re-attach must all heal without leaking host pages or reusing MR keys.

use std::sync::Arc;

use dcfa::{
    spawn_daemons_with, CtrlEvent, DaemonConfig, DaemonFault, DaemonFaultKind, DcfaConfig,
    DcfaContext, DcfaStats,
};
use fabric::{Cluster, ClusterConfig, Domain, MemRef, NodeId};
use parking_lot::Mutex;
use proptest::prelude::*;
use simcore::{SimDuration, Simulation};
use verbs::IbFabric;

struct Rig {
    sim: Simulation,
    ib: Arc<IbFabric>,
    scif: Arc<scif::ScifFabric>,
    stats: DcfaStats,
    events: Arc<Mutex<Vec<CtrlEvent>>>,
}

fn rig_with(nodes: usize, mut dcfg: DaemonConfig) -> Rig {
    let sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nodes));
    let ib = IbFabric::new(cluster.clone());
    let scif = scif::ScifFabric::new(cluster);
    let events: Arc<Mutex<Vec<CtrlEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = events.clone();
    dcfg.hook = Some(Arc::new(move |ev| sink.lock().push(*ev)));
    let stats = spawn_daemons_with(&sim.scheduler(), &scif, &ib, dcfg);
    Rig {
        sim,
        ib,
        scif,
        stats,
        events,
    }
}

fn client_cfg(r: &Rig) -> DcfaConfig {
    DcfaConfig {
        stats: r.stats.clone(),
        hook: Some({
            let sink = r.events.clone();
            Arc::new(move |ev| sink.lock().push(*ev))
        }),
        ..DcfaConfig::default()
    }
}

fn phi(n: usize) -> MemRef {
    MemRef {
        node: NodeId(n),
        domain: Domain::Phi,
    }
}

fn host(n: usize) -> MemRef {
    MemRef {
        node: NodeId(n),
        domain: Domain::Host,
    }
}

fn crash_after(n: u64) -> DaemonFault {
    DaemonFault {
        after_cmds: n,
        kind: DaemonFaultKind::Crash,
        node: None,
    }
}

// ---- deterministic replays -------------------------------------------------

#[test]
fn crash_mid_reg_mr_retries_through_respawn() {
    // The daemon dies on the client's first RegMr (command #2, after the
    // hello). The client must ride retransmit timeouts into a reconnect,
    // re-greet the respawned incarnation and land the registration.
    let mut r = rig_with(
        1,
        DaemonConfig {
            faults: vec![crash_after(1)],
            ..DaemonConfig::default()
        },
    );
    let (ib, scif, cfg) = (r.ib.clone(), r.scif.clone(), client_cfg(&r));
    r.sim.spawn("rank0", move |ctx| {
        let cl = ib.cluster().clone();
        let d = DcfaContext::open_with(ctx, &ib, &scif, NodeId(0), cfg).unwrap();
        let buf = cl.alloc_pages(phi(0), 4096).unwrap();
        let mr = d.reg_mr(ctx, buf).unwrap();
        assert!(ib.mr_handle(mr.key()).is_some());
        assert_eq!(d.ctrl_epoch(), 1, "exactly one re-attach");
        d.close(ctx);
    });
    r.sim.run_expect();
    let c = r.stats.snapshot();
    assert_eq!(c.daemon_crashes, 1);
    assert_eq!(c.daemon_respawns, 1);
    assert!(c.cmd_timeouts >= 1, "{c:?}");
    assert!(c.cmd_retries >= 1, "{c:?}");
    assert_eq!(c.reattaches, 1);
    assert_eq!(c.mr_registered, 1, "crash fired before execution: {c:?}");
    let evs = r.events.lock();
    assert!(evs
        .iter()
        .any(|e| matches!(e, CtrlEvent::DaemonCrash { .. })));
    assert!(evs
        .iter()
        .any(|e| matches!(e, CtrlEvent::DaemonRespawn { .. })));
}

#[test]
fn dropped_reply_is_answered_from_dedup_cache() {
    // The RegOffloadMr executes but its reply is lost. The retransmission
    // must be served from the reply cache — exactly one twin allocated,
    // no duplicate registration.
    let mut r = rig_with(
        1,
        DaemonConfig {
            faults: vec![DaemonFault {
                after_cmds: 1,
                kind: DaemonFaultKind::DropReply,
                node: None,
            }],
            ..DaemonConfig::default()
        },
    );
    let (ib, scif, cfg) = (r.ib.clone(), r.scif.clone(), client_cfg(&r));
    r.sim.spawn("rank0", move |ctx| {
        let cl = ib.cluster().clone();
        let used0 = cl.mem_used(host(0));
        let d = DcfaContext::open_with(ctx, &ib, &scif, NodeId(0), cfg).unwrap();
        let buf = cl.alloc_pages(phi(0), 16 << 10).unwrap();
        let omr = d.reg_offload_mr(ctx, &buf).unwrap();
        assert_eq!(cl.mem_used(host(0)), used0 + (16 << 10), "one twin only");
        d.dereg_offload_mr(ctx, omr).unwrap();
        assert_eq!(cl.mem_used(host(0)), used0);
        d.close(ctx);
    });
    r.sim.run_expect();
    let c = r.stats.snapshot();
    assert_eq!(c.offload_registered, 1, "{c:?}");
    assert_eq!(c.offload_deregistered, 1, "{c:?}");
    assert!(c.reply_replays >= 1, "{c:?}");
    assert_eq!(c.reattaches, 0, "dedup must heal this without re-attach");
    assert!(r
        .events
        .lock()
        .iter()
        .any(|e| matches!(e, CtrlEvent::ReplyReplayed { .. })));
}

#[test]
fn delayed_reply_heals_without_duplicate_execution() {
    // The reply is held past the client timeout; whether the client rides
    // a retransmit or a full reconnect, the command must execute once.
    let mut r = rig_with(
        1,
        DaemonConfig {
            faults: vec![DaemonFault {
                after_cmds: 1,
                kind: DaemonFaultKind::DelayReply,
                node: None,
            }],
            ..DaemonConfig::default()
        },
    );
    let (ib, scif, cfg) = (r.ib.clone(), r.scif.clone(), client_cfg(&r));
    r.sim.spawn("rank0", move |ctx| {
        let cl = ib.cluster().clone();
        let d = DcfaContext::open_with(ctx, &ib, &scif, NodeId(0), cfg).unwrap();
        let buf = cl.alloc_pages(phi(0), 4096).unwrap();
        let mr = d.reg_mr(ctx, buf).unwrap();
        assert!(ib.mr_handle(mr.key()).is_some());
        d.dereg_mr(ctx, &mr).unwrap();
        d.close(ctx);
    });
    r.sim.run_expect();
    let c = r.stats.snapshot();
    assert_eq!(c.mr_registered, 1, "{c:?}");
    assert_eq!(c.mr_deregistered, 1, "{c:?}");
    assert!(c.cmd_timeouts >= 1, "{c:?}");
}

#[test]
fn respawn_then_reattach_replays_full_journal() {
    // Build up a journal (two MRs, a CQ, a QP = 4 entries), then crash the
    // daemon on the next command. The re-attach must re-establish every
    // journaled resource: plain MRs survive on the HCA and are re-adopted.
    let mut r = rig_with(
        1,
        DaemonConfig {
            faults: vec![crash_after(5)],
            ..DaemonConfig::default()
        },
    );
    let (ib, scif, cfg) = (r.ib.clone(), r.scif.clone(), client_cfg(&r));
    let ib2 = r.ib.clone();
    r.sim.spawn("rank0", move |ctx| {
        let cl = ib.cluster().clone();
        let d = DcfaContext::open_with(ctx, &ib, &scif, NodeId(0), cfg).unwrap();
        let b1 = cl.alloc_pages(phi(0), 4096).unwrap();
        let b2 = cl.alloc_pages(phi(0), 8192).unwrap();
        let mr1 = d.reg_mr(ctx, b1).unwrap(); // cmd 2
        let mr2 = d.reg_mr(ctx, b2).unwrap(); // cmd 3
        let cq = d.create_cq(ctx).unwrap(); // cmd 4
        let _qp = d.create_qp(ctx, &cq, &cq).unwrap(); // cmd 5
                                                       // Command 6 hits the crash; the journal (mr1, mr2, cq, qp) must be
                                                       // replayed against the respawned incarnation before it completes.
        let b3 = cl.alloc_pages(phi(0), 4096).unwrap();
        let mr3 = d.reg_mr(ctx, b3).unwrap();
        assert_eq!(d.ctrl_epoch(), 1);
        // Pre-crash keys stayed live on the HCA through the crash, so
        // rkeys already published to peers keep working.
        assert!(ib2.mr_handle(mr1.key()).is_some());
        assert!(ib2.mr_handle(mr2.key()).is_some());
        assert_ne!(mr3.key(), mr1.key());
        assert_ne!(mr3.key(), mr2.key());
        // Adopted metadata is functional: dereg through the new daemon.
        d.dereg_mr(ctx, &mr1).unwrap();
        d.dereg_mr(ctx, &mr2).unwrap();
        d.close(ctx);
    });
    r.sim.run_expect();
    let c = r.stats.snapshot();
    assert_eq!(c.daemon_crashes, 1);
    assert_eq!(c.daemon_respawns, 1);
    assert_eq!(c.reattaches, 1);
    assert_eq!(c.mrs_adopted, 2, "{c:?}");
    let evs = r.events.lock();
    let reattach = evs
        .iter()
        .find_map(|e| match e {
            CtrlEvent::Reattach {
                journaled,
                replayed,
                ..
            } => Some((*journaled, *replayed)),
            _ => None,
        })
        .expect("re-attach event");
    assert_eq!(reattach, (4, 4), "every journaled resource re-established");
}

#[test]
fn abrupt_client_death_is_reclaimed_without_leaks() {
    // A client registers resources (including a host twin) and vanishes
    // without Bye or heartbeats. The lease reaper must drain its session:
    // host pages back to baseline, alloc/free balanced.
    let mut r = rig_with(
        1,
        DaemonConfig {
            lease_ttl: Some(SimDuration::from_micros(300)),
            reaper_period: SimDuration::from_micros(100),
            ..DaemonConfig::default()
        },
    );
    let (ib, scif, cfg) = (r.ib.clone(), r.scif.clone(), client_cfg(&r));
    let stats = r.stats.clone();
    r.sim.spawn("doomed", move |ctx| {
        let cl = ib.cluster().clone();
        let used0 = cl.mem_used(host(0));
        let d = DcfaContext::open_with(ctx, &ib, &scif, NodeId(0), cfg).unwrap();
        let b = cl.alloc_pages(phi(0), 4096).unwrap();
        let _mr = d.reg_mr(ctx, b.clone()).unwrap();
        let _omr = d.reg_offload_mr(ctx, &b).unwrap();
        assert!(cl.mem_used(host(0)) > used0);
        // Die abruptly: no Bye, no close. The daemon must notice via the
        // expired lease. An observer checks after the TTL.
        let cl2 = cl.clone();
        let stats2 = stats.clone();
        ctx.scheduler().spawn_daemon("observer", move |octx| {
            octx.sleep(SimDuration::from_micros(2000));
            let c = stats2.snapshot();
            assert!(c.leases_reclaimed >= 1, "{c:?}");
            assert_eq!(c.mr_registered, c.mr_deregistered, "{c:?}");
            assert_eq!(c.offload_registered, c.offload_deregistered, "{c:?}");
            assert_eq!(cl2.mem_used(host(0)), used0, "host twin pages leaked");
        });
    });
    r.sim.run_expect();
    assert!(r
        .events
        .lock()
        .iter()
        .any(|e| matches!(e, CtrlEvent::LeaseReclaim { objects: 2, .. })));
}

#[test]
fn heartbeats_keep_an_idle_client_alive() {
    // With the lease TTL shorter than the client's quiet period, only the
    // heartbeat sidecar keeps the session from being reaped.
    let mut r = rig_with(
        1,
        DaemonConfig {
            lease_ttl: Some(SimDuration::from_micros(300)),
            reaper_period: SimDuration::from_micros(100),
            ..DaemonConfig::default()
        },
    );
    let (ib, scif) = (r.ib.clone(), r.scif.clone());
    let cfg = DcfaConfig {
        heartbeat_interval: Some(SimDuration::from_micros(100)),
        ..client_cfg(&r)
    };
    r.sim.spawn("idle", move |ctx| {
        let cl = ib.cluster().clone();
        let d = DcfaContext::open_with(ctx, &ib, &scif, NodeId(0), cfg).unwrap();
        ctx.sleep(SimDuration::from_micros(2000)); // way past the TTL
        let b = cl.alloc_pages(phi(0), 4096).unwrap();
        let mr = d.reg_mr(ctx, b).unwrap();
        d.dereg_mr(ctx, &mr).unwrap();
        d.close(ctx);
    });
    r.sim.run_expect();
    let c = r.stats.snapshot();
    assert_eq!(c.leases_reclaimed, 0, "{c:?}");
    assert_eq!(c.reattaches, 0, "{c:?}");
    assert!(c.heartbeats >= 10, "{c:?}");
}

#[test]
fn dereg_offload_of_reclaimed_twin_is_a_noop_ok() {
    // Crash reclaims all twins. A later dereg of the stale key must be an
    // idempotent Ok, and must not double-free host pages.
    let mut r = rig_with(
        1,
        DaemonConfig {
            faults: vec![crash_after(2)],
            ..DaemonConfig::default()
        },
    );
    let (ib, scif, cfg) = (r.ib.clone(), r.scif.clone(), client_cfg(&r));
    r.sim.spawn("rank0", move |ctx| {
        let cl = ib.cluster().clone();
        let used0 = cl.mem_used(host(0));
        let d = DcfaContext::open_with(ctx, &ib, &scif, NodeId(0), cfg).unwrap();
        let b = cl.alloc_pages(phi(0), 4096).unwrap();
        let omr = d.reg_offload_mr(ctx, &b).unwrap(); // cmd 2
                                                      // Command 3 crashes the daemon: its drain frees the twin.
        let b2 = cl.alloc_pages(phi(0), 4096).unwrap();
        let _mr = d.reg_mr(ctx, b2).unwrap();
        assert_eq!(cl.mem_used(host(0)), used0, "crash drain freed the twin");
        // The stale key tears down cleanly.
        d.dereg_offload_mr(ctx, omr).unwrap();
        assert_eq!(cl.mem_used(host(0)), used0);
        d.close(ctx);
    });
    r.sim.run_expect();
    let c = r.stats.snapshot();
    assert_eq!(c.offload_registered, 1, "{c:?}");
    assert_eq!(c.offload_deregistered, 1, "freed once, by the crash drain");
}

#[test]
fn two_clients_survive_a_shared_daemon_crash() {
    // Both clients of one node daemon lose their sessions in the same
    // crash; both must re-attach independently and finish their work.
    let mut r = rig_with(
        1,
        DaemonConfig {
            faults: vec![crash_after(5)],
            ..DaemonConfig::default()
        },
    );
    for i in 0..2 {
        let (ib, scif, cfg) = (r.ib.clone(), r.scif.clone(), client_cfg(&r));
        r.sim.spawn(format!("rank{i}"), move |ctx| {
            let cl = ib.cluster().clone();
            let d = DcfaContext::open_with(ctx, &ib, &scif, NodeId(0), cfg).unwrap();
            let mut keys = Vec::new();
            for _ in 0..4 {
                let b = cl.alloc_pages(phi(0), 4096).unwrap();
                let mr = d.reg_mr(ctx, b).unwrap();
                keys.push(mr.key().0);
                d.dereg_mr(ctx, &mr).unwrap();
            }
            keys.dedup();
            assert_eq!(keys.len(), 4, "duplicate MR keys handed out");
            d.close(ctx);
        });
    }
    r.sim.run_expect();
    let c = r.stats.snapshot();
    assert_eq!(c.daemon_crashes, 1);
    assert_eq!(c.daemon_respawns, 1);
    assert!(c.reattaches >= 1, "{c:?}");
}

// ---- property: random control-plane faults never corrupt bookkeeping ------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Arbitrary (bounded) command-channel fault plans: the client-visible
    // contract must hold regardless — every operation eventually succeeds,
    // MR keys are never reused, and host twin pages balance to zero once
    // the client is done.
    #[test]
    fn random_daemon_faults_preserve_keys_and_pages(
        plan in proptest::collection::vec((0u64..10, 0u8..3), 0..4),
    ) {
        let faults: Vec<DaemonFault> = plan
            .iter()
            .map(|&(after_cmds, k)| DaemonFault {
                after_cmds,
                kind: match k {
                    0 => DaemonFaultKind::Crash,
                    1 => DaemonFaultKind::DropReply,
                    _ => DaemonFaultKind::DelayReply,
                },
                node: None,
            })
            .collect();
        let mut r = rig_with(1, DaemonConfig {
            faults,
            ..DaemonConfig::default()
        });
        let (ib, scif, cfg) = (r.ib.clone(), r.scif.clone(), client_cfg(&r));
        let keys_out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let keys2 = keys_out.clone();
        let balance: Arc<Mutex<Option<(u64, u64)>>> = Arc::new(Mutex::new(None));
        let balance2 = balance.clone();
        r.sim.spawn("rank0", move |ctx| {
            let cl = ib.cluster().clone();
            let used0 = cl.mem_used(host(0));
            let d = DcfaContext::open_with(ctx, &ib, &scif, NodeId(0), cfg).unwrap();
            let mut keys = Vec::new();
            for i in 0..4 {
                let b = cl.alloc_pages(phi(0), 4096 * (i + 1)).unwrap();
                let mr = d.reg_mr(ctx, b.clone()).unwrap();
                keys.push(mr.key().0);
                let omr = d.reg_offload_mr(ctx, &b).unwrap();
                keys.push(omr.host_mr.key().0);
                d.dereg_offload_mr(ctx, omr).unwrap();
                d.dereg_mr(ctx, &mr).unwrap();
            }
            d.close(ctx);
            *keys2.lock() = keys;
            *balance2.lock() = Some((used0, cl.mem_used(host(0))));
        });
        r.sim.run_expect();
        let keys = keys_out.lock().clone();
        let mut uniq = keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), keys.len(), "MR key reused: {:?}", keys);
        let (used0, used1) = balance.lock().expect("client finished");
        prop_assert_eq!(used0, used1, "host twin pages leaked");
        // Whatever faults fired, crash/respawn bookkeeping must pair up.
        let c = r.stats.snapshot();
        prop_assert_eq!(c.daemon_crashes, c.daemon_respawns);
    }
}
