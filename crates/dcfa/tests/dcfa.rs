//! Integration tests for DCFA: command offloading costs, Phi-side verbs
//! through the daemon, and the offloading send buffer.

use std::sync::Arc;

use dcfa::{spawn_daemons, DcfaContext};
use fabric::{Cluster, ClusterConfig, Domain, MemRef, NodeId};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{SimDuration, Simulation};
use verbs::{IbFabric, SendWr, VerbsContext, WcStatus};

struct Rig {
    sim: Simulation,
    ib: Arc<IbFabric>,
    scif: Arc<ScifFabric>,
}

fn rig(nodes: usize) -> Rig {
    let sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nodes));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    spawn_daemons(&sim.scheduler(), &scif, &ib);
    Rig { sim, ib, scif }
}

fn phi(n: usize) -> MemRef {
    MemRef {
        node: NodeId(n),
        domain: Domain::Phi,
    }
}

#[test]
fn open_and_close() {
    let mut r = rig(1);
    let (ib, scif) = (r.ib.clone(), r.scif.clone());
    r.sim.spawn("rank0", move |ctx| {
        let dcfa = DcfaContext::open(ctx, &ib, &scif, NodeId(0)).unwrap();
        assert_eq!(dcfa.node(), NodeId(0));
        dcfa.close(ctx);
    });
    r.sim.run_expect();
}

#[test]
fn phi_registration_much_more_expensive_than_host() {
    let mut r = rig(1);
    let (ib, scif) = (r.ib.clone(), r.scif.clone());
    let out: Arc<Mutex<(u64, u64)>> = Arc::new(Mutex::new((0, 0)));
    let out2 = out.clone();
    r.sim.spawn("rank0", move |ctx| {
        let cl = ib.cluster().clone();
        let dcfa = DcfaContext::open(ctx, &ib, &scif, NodeId(0)).unwrap();
        let buf = cl.alloc_pages(phi(0), 64 << 10).unwrap();
        let t0 = ctx.now();
        let _mr = dcfa.reg_mr(ctx, buf).unwrap();
        let phi_cost = (ctx.now() - t0).as_nanos();

        let hostctx = VerbsContext::open(ib.clone(), NodeId(0), Domain::Host);
        let hbuf = cl
            .alloc_pages(
                MemRef {
                    node: NodeId(0),
                    domain: Domain::Host,
                },
                64 << 10,
            )
            .unwrap();
        let t1 = ctx.now();
        let _hmr = hostctx.reg_mr(ctx, hbuf);
        let host_cost = (ctx.now() - t1).as_nanos();
        *out2.lock() = (phi_cost, host_cost);
    });
    r.sim.run_expect();
    let (phi_cost, host_cost) = *out.lock();
    // "A memory region registration operation on the Xeon Phi co-processor
    // is much more expensive than that on the host" (§IV-B3).
    assert!(
        phi_cost as f64 / host_cost as f64 > 3.0,
        "phi={phi_cost}ns host={host_cost}ns"
    );
}

#[test]
fn dcfa_rdma_write_between_phi_cards() {
    // End-to-end: two ranks on two Phi cards, resources via the daemon,
    // RDMA write directly card-to-card.
    let mut r = rig(2);
    let (ib, scif) = (r.ib.clone(), r.scif.clone());
    let qpns: Arc<Mutex<Vec<(NodeId, verbs::QpNum)>>> = Arc::new(Mutex::new(Vec::new()));
    let mrinfo: Arc<Mutex<Option<(u64, verbs::MrKey)>>> = Arc::new(Mutex::new(None));
    let done: Arc<Mutex<bool>> = Arc::new(Mutex::new(false));

    // Receiver: register a target region and expose it.
    let (ib1, scif1) = (ib.clone(), scif.clone());
    let (qpns1, mrinfo1, done1) = (qpns.clone(), mrinfo.clone(), done.clone());
    r.sim.spawn("rank1", move |ctx| {
        let cl = ib1.cluster().clone();
        let dcfa = DcfaContext::open(ctx, &ib1, &scif1, NodeId(1)).unwrap();
        let buf = cl.alloc_pages(phi(1), 4096).unwrap();
        let mr = dcfa.reg_mr(ctx, buf.clone()).unwrap();
        let cq = dcfa.create_cq(ctx).unwrap();
        let qp = dcfa.create_qp(ctx, &cq, &cq).unwrap();
        qpns1.lock().push((qp.node(), qp.qpn()));
        *mrinfo1.lock() = Some((mr.addr(), mr.rkey()));
        // Wait for the peer QP to appear, then connect.
        while qpns1.lock().len() < 2 {
            ctx.sleep(SimDuration::from_micros(1));
        }
        let peer = qpns1.lock()[1];
        qp.connect(peer.0, peer.1);
        // Wait for the payload to land.
        let seen = mr.write_event().epoch();
        ctx.wait_event(mr.write_event(), seen, "payload");
        assert_eq!(cl.read_vec(&buf)[..5], *b"dcfa!");
        *done1.lock() = true;
    });

    let (qpns2, mrinfo2) = (qpns.clone(), mrinfo.clone());
    r.sim.spawn("rank0", move |ctx| {
        let cl = ib.cluster().clone();
        let dcfa = DcfaContext::open(ctx, &ib, &scif, NodeId(0)).unwrap();
        let buf = cl.alloc_pages(phi(0), 4096).unwrap();
        cl.write(&buf, 0, b"dcfa!");
        let mr = dcfa.reg_mr(ctx, buf).unwrap();
        let cq = dcfa.create_cq(ctx).unwrap();
        let qp = dcfa.create_qp(ctx, &cq, &cq).unwrap();
        // Wait for the receiver to publish its QP and MR.
        while qpns2.lock().is_empty() || mrinfo2.lock().is_none() {
            ctx.sleep(SimDuration::from_micros(1));
        }
        let peer = qpns2.lock()[0];
        qpns2.lock().push((qp.node(), qp.qpn()));
        qp.connect(peer.0, peer.1);
        let (raddr, rkey) = mrinfo2.lock().unwrap();
        qp.post_send(ctx, SendWr::rdma_write(1, vec![mr.sge(0, 5)], raddr, rkey))
            .unwrap();
        let wc = cq.wait(ctx);
        assert_eq!(wc.status, WcStatus::Success);
    });

    r.sim.run_expect();
    assert!(*done.lock());
}

#[test]
fn offload_mr_lifecycle_and_sync() {
    let mut r = rig(1);
    let (ib, scif) = (r.ib.clone(), r.scif.clone());
    r.sim.spawn("rank0", move |ctx| {
        let cl = ib.cluster().clone();
        let host_mem = MemRef {
            node: NodeId(0),
            domain: Domain::Host,
        };
        let used_before = cl.mem_used(host_mem);
        let dcfa = DcfaContext::open(ctx, &ib, &scif, NodeId(0)).unwrap();
        let buf = cl.alloc_pages(phi(0), 64 << 10).unwrap();
        cl.write(&buf, 0, &[0x5A; 1024]);
        let omr = dcfa.reg_offload_mr(ctx, &buf).unwrap();
        // Host twin allocated on the host.
        assert!(cl.mem_used(host_mem) >= used_before + (64 << 10));
        assert_eq!(omr.host_mr.buffer().mem.domain, Domain::Host);

        // Sync moves the latest data.
        dcfa.sync_offload_mr(ctx, &omr, 0, 1024);
        let mut out = vec![0u8; 1024];
        cl.read(omr.host_mr.buffer(), 0, &mut out);
        assert_eq!(out, vec![0x5A; 1024]);

        // Partial sync at an offset.
        cl.write(&buf, 2048, &[0xA5; 512]);
        dcfa.sync_offload_mr(ctx, &omr, 2048, 512);
        let mut out = vec![0u8; 512];
        cl.read(omr.host_mr.buffer(), 2048, &mut out);
        assert_eq!(out, vec![0xA5; 512]);

        // Dereg frees the host twin.
        dcfa.dereg_offload_mr(ctx, omr).unwrap();
        assert_eq!(cl.mem_used(host_mem), used_before);
    });
    r.sim.run_expect();
}

#[test]
fn offload_send_outperforms_direct_phi_send_for_large_messages() {
    // The point of §IV-B4: host-staged send beats the direct Phi-sourced
    // path for large messages despite the extra sync.
    let mut r = rig(2);
    let (ib, scif) = (r.ib.clone(), r.scif.clone());
    let out: Arc<Mutex<(u64, u64)>> = Arc::new(Mutex::new((0, 0)));
    let out2 = out.clone();
    r.sim.spawn("rank0", move |ctx| {
        let cl = ib.cluster().clone();
        let len: u64 = 1 << 20;
        let dcfa = DcfaContext::open(ctx, &ib, &scif, NodeId(0)).unwrap();
        let src = cl.alloc_pages(phi(0), len).unwrap();
        let mr_direct = dcfa.reg_mr(ctx, src.clone()).unwrap();
        let omr = dcfa.reg_offload_mr(ctx, &src).unwrap();

        // Remote target on node 1 (host memory region for simplicity).
        let rctx = VerbsContext::open(ib.clone(), NodeId(1), Domain::Host);
        let rbuf = cl
            .alloc_pages(
                MemRef {
                    node: NodeId(1),
                    domain: Domain::Host,
                },
                len,
            )
            .unwrap();
        let rmr = rctx.reg_mr_uncharged(rbuf);

        let cq = dcfa.create_cq(ctx).unwrap();
        let qp = dcfa.create_qp(ctx, &cq, &cq).unwrap();
        let rcq = rctx.create_cq();
        let rqp = rctx.create_qp(&rcq, &rcq);
        verbs::QueuePair::connect_pair(&qp, &rqp);

        // Direct: source the Phi buffer.
        let t0 = ctx.now();
        qp.post_send(
            ctx,
            SendWr::rdma_write(1, vec![mr_direct.sge(0, len)], rmr.addr(), rmr.rkey()),
        )
        .unwrap();
        let _ = cq.wait(ctx);
        let direct = (ctx.now() - t0).as_nanos();

        // Offloaded: sync to host twin, then source the host buffer.
        let t1 = ctx.now();
        dcfa.sync_offload_mr(ctx, &omr, 0, len);
        qp.post_send(
            ctx,
            SendWr::rdma_write(2, vec![omr.host_mr.sge(0, len)], rmr.addr(), rmr.rkey()),
        )
        .unwrap();
        let _ = cq.wait(ctx);
        let offloaded = (ctx.now() - t1).as_nanos();
        *out2.lock() = (direct, offloaded);
    });
    r.sim.run_expect();
    let (direct, offloaded) = *out.lock();
    assert!(
        offloaded * 2 < direct,
        "offload should be >2x faster at 1MiB: direct={direct} offloaded={offloaded}"
    );
}

#[test]
fn dereg_unknown_key_is_an_error() {
    let mut r = rig(1);
    let (ib, scif) = (r.ib.clone(), r.scif.clone());
    r.sim.spawn("rank0", move |ctx| {
        let cl = ib.cluster().clone();
        let dcfa = DcfaContext::open(ctx, &ib, &scif, NodeId(0)).unwrap();
        let buf = cl.alloc_pages(phi(0), 4096).unwrap();
        let mr = dcfa.reg_mr(ctx, buf).unwrap();
        dcfa.dereg_mr(ctx, &mr).unwrap();
        // Second dereg: daemon no longer knows the key.
        let err = dcfa.dereg_mr(ctx, &mr).unwrap_err();
        assert_eq!(err, dcfa::DcfaError::UnknownKey);
    });
    r.sim.run_expect();
}

#[test]
fn inject_fault_through_daemon_faults_a_posted_write() {
    // A Phi-resident client arms a link fault over the command channel;
    // the HCA model consumes it and errors the matching posted operation.
    let mut r = rig(2);
    let (ib, scif) = (r.ib.clone(), r.scif.clone());
    r.sim.spawn("rank0", move |ctx| {
        let cl = ib.cluster().clone();
        let dcfa = DcfaContext::open(ctx, &ib, &scif, NodeId(0)).unwrap();
        dcfa.inject_fault(
            ctx,
            fabric::LinkFault {
                after_ops: 0,
                kind: fabric::LinkFaultKind::Fatal,
                from: Some(NodeId(0)),
                to: Some(NodeId(1)),
            },
        )
        .unwrap();
        assert_eq!(cl.pending_link_faults(), 1);

        let buf = cl.alloc_pages(phi(0), 4096).unwrap();
        let mr = dcfa.reg_mr(ctx, buf).unwrap();
        let rctx = VerbsContext::open(ib.clone(), NodeId(1), Domain::Host);
        let rbuf = cl
            .alloc_pages(
                MemRef {
                    node: NodeId(1),
                    domain: Domain::Host,
                },
                4096,
            )
            .unwrap();
        let rmr = rctx.reg_mr_uncharged(rbuf);

        let cq = dcfa.create_cq(ctx).unwrap();
        let qp = dcfa.create_qp(ctx, &cq, &cq).unwrap();
        let rcq = rctx.create_cq();
        let rqp = rctx.create_qp(&rcq, &rcq);
        verbs::QueuePair::connect_pair(&qp, &rqp);

        qp.post_send(
            ctx,
            SendWr::rdma_write(1, vec![mr.sge(0, 64)], rmr.addr(), rmr.rkey()),
        )
        .unwrap();
        let wc = cq.wait(ctx);
        assert_ne!(wc.status, WcStatus::Success);
        assert!(!wc.status.is_transient());
        // The plan was one-shot: a second write goes through clean.
        assert_eq!(cl.pending_link_faults(), 0);
        qp.post_send(
            ctx,
            SendWr::rdma_write(2, vec![mr.sge(0, 64)], rmr.addr(), rmr.rkey()),
        )
        .unwrap();
        let wc = cq.wait(ctx);
        assert_eq!(wc.status, WcStatus::Success);
        dcfa.close(ctx);
    });
    r.sim.run_expect();
}

#[test]
fn multiple_clients_share_one_daemon() {
    let mut r = rig(1);
    for i in 0..4 {
        let (ib, scif) = (r.ib.clone(), r.scif.clone());
        r.sim.spawn(format!("rank{i}"), move |ctx| {
            let cl = ib.cluster().clone();
            let dcfa = DcfaContext::open(ctx, &ib, &scif, NodeId(0)).unwrap();
            let buf = cl.alloc_pages(phi(0), 4096).unwrap();
            let mr = dcfa.reg_mr(ctx, buf).unwrap();
            dcfa.dereg_mr(ctx, &mr).unwrap();
            dcfa.close(ctx);
        });
    }
    r.sim.run_expect();
}
