//! DCFA edge cases: daemon lifecycle, command-channel error paths, offload
//! twin allocation failure, and cost accounting of the offload round trip.

use std::sync::Arc;

use dcfa::{spawn_daemons, DcfaContext, DcfaError};
use fabric::{Cluster, ClusterConfig, Domain, MemRef, NodeId};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::Simulation;
use verbs::IbFabric;

struct Rig {
    sim: Simulation,
    ib: Arc<IbFabric>,
    scif: Arc<ScifFabric>,
}

fn rig_with(cfg: ClusterConfig) -> Rig {
    let sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), cfg);
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    spawn_daemons(&sim.scheduler(), &scif, &ib);
    Rig { sim, ib, scif }
}

#[test]
fn open_without_daemon_fails_cleanly() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(1));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    // No spawn_daemons.
    sim.spawn("rank0", move |ctx| {
        let err = DcfaContext::open(ctx, &ib, &scif, NodeId(0)).unwrap_err();
        assert!(matches!(err, DcfaError::Connect(_)));
    });
    sim.run_expect();
}

#[test]
fn bye_then_new_connection_gets_fresh_handler() {
    let mut r = rig_with(ClusterConfig::with_nodes(1));
    let (ib, scif) = (r.ib.clone(), r.scif.clone());
    r.sim.spawn("rank0", move |ctx| {
        let d1 = DcfaContext::open(ctx, &ib, &scif, NodeId(0)).unwrap();
        let cl = ib.cluster().clone();
        let buf = cl
            .alloc_pages(
                MemRef {
                    node: NodeId(0),
                    domain: Domain::Phi,
                },
                4096,
            )
            .unwrap();
        let mr = d1.reg_mr(ctx, buf.clone()).unwrap();
        d1.dereg_mr(ctx, &mr).unwrap();
        d1.close(ctx);
        // A second session works independently.
        let d2 = DcfaContext::open(ctx, &ib, &scif, NodeId(0)).unwrap();
        let mr2 = d2.reg_mr(ctx, buf).unwrap();
        d2.dereg_mr(ctx, &mr2).unwrap();
        d2.close(ctx);
    });
    r.sim.run_expect();
}

#[test]
fn offload_twin_allocation_failure_reports_oom() {
    // Host memory too small for the twin: reg_offload_mr must surface the
    // daemon's OOM error, not panic.
    let mut cfg = ClusterConfig::with_nodes(1);
    cfg.host_mem_capacity = 64 << 10; // tiny host memory
    let mut r = rig_with(cfg);
    let (ib, scif) = (r.ib.clone(), r.scif.clone());
    r.sim.spawn("rank0", move |ctx| {
        let cl = ib.cluster().clone();
        let d = DcfaContext::open(ctx, &ib, &scif, NodeId(0)).unwrap();
        let big = cl
            .alloc_pages(
                MemRef {
                    node: NodeId(0),
                    domain: Domain::Phi,
                },
                1 << 20,
            )
            .unwrap();
        let err = d.reg_offload_mr(ctx, &big).unwrap_err();
        assert_eq!(err, DcfaError::Oom, "{err:?}");
    });
    r.sim.run_expect();
}

#[test]
fn registration_cost_scales_with_pages() {
    let mut r = rig_with(ClusterConfig::with_nodes(1));
    let (ib, scif) = (r.ib.clone(), r.scif.clone());
    let out = Arc::new(Mutex::new((0u64, 0u64)));
    let o2 = out.clone();
    r.sim.spawn("rank0", move |ctx| {
        let cl = ib.cluster().clone();
        let d = DcfaContext::open(ctx, &ib, &scif, NodeId(0)).unwrap();
        let small = cl
            .alloc_pages(
                MemRef {
                    node: NodeId(0),
                    domain: Domain::Phi,
                },
                4096,
            )
            .unwrap();
        let large = cl
            .alloc_pages(
                MemRef {
                    node: NodeId(0),
                    domain: Domain::Phi,
                },
                4 << 20,
            )
            .unwrap();
        let t0 = ctx.now();
        let m1 = d.reg_mr(ctx, small).unwrap();
        let small_cost = (ctx.now() - t0).as_nanos();
        let t1 = ctx.now();
        let m2 = d.reg_mr(ctx, large).unwrap();
        let large_cost = (ctx.now() - t1).as_nanos();
        d.dereg_mr(ctx, &m1).unwrap();
        d.dereg_mr(ctx, &m2).unwrap();
        *o2.lock() = (small_cost, large_cost);
    });
    r.sim.run_expect();
    let (small, large) = *out.lock();
    // 1024x the pages: per-page translation + pinning must show.
    assert!(large > small, "per-page cost invisible: {small} vs {large}");
    let cfg = ClusterConfig::paper();
    let per_page =
        cfg.cost.cmd_translate_per_page.as_nanos() + cfg.cost.host_mr_reg_per_page.as_nanos();
    assert!(
        large - small >= 1000 * per_page,
        "expected >= {} more",
        1000 * per_page
    );
}

#[test]
fn daemons_on_every_node_serve_their_own_cards() {
    let mut r = rig_with(ClusterConfig::with_nodes(4));
    let done = Arc::new(Mutex::new(0usize));
    for n in 0..4 {
        let (ib, scif) = (r.ib.clone(), r.scif.clone());
        let d2 = done.clone();
        r.sim.spawn(format!("rank-on-{n}"), move |ctx| {
            let cl = ib.cluster().clone();
            let d = DcfaContext::open(ctx, &ib, &scif, NodeId(n)).unwrap();
            assert_eq!(d.node(), NodeId(n));
            let buf = cl
                .alloc_pages(
                    MemRef {
                        node: NodeId(n),
                        domain: Domain::Phi,
                    },
                    8192,
                )
                .unwrap();
            let mr = d.reg_mr(ctx, buf).unwrap();
            // The registered region lives on this node's card.
            assert_eq!(mr.buffer().mem.node, NodeId(n));
            d.dereg_mr(ctx, &mr).unwrap();
            d.close(ctx);
            *d2.lock() += 1;
        });
    }
    r.sim.run_expect();
    assert_eq!(*done.lock(), 4);
}
