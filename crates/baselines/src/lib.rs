//! # baselines — the Intel MPI execution modes the paper compares against
//!
//! Two honest re-implementations on the shared simulation substrate:
//!
//! * [`IntelPhiWorld`]/[`IntelPhiComm`] — "Intel MPI on Xeon Phi
//!   co-processors" mode: ranks on the cards over the MPSS/SCIF proxy
//!   stack; large messages ride the direct Phi-sourced InfiniBand path
//!   (DMA-read limited, no offloading send buffer) — the Fig. 9
//!   comparison.
//! * [`OffloadRuntime`] — the Intel offload pragmas for the "Intel MPI on
//!   Xeon + offload" mode: ranks on the hosts (host MPI =
//!   `dcfa_mpi::MpiConfig::host()`), compute pushed to the card with
//!   copy-in/copy-out, persistent buffers and double buffering — the
//!   Figs. 10/11/12 comparison.
//!
//! `IntelPhiComm` implements [`dcfa_mpi::Communicator`], so every workload
//! in the `apps` crate runs unchanged over either library.

mod intel_phi;
mod xeon_offload;

pub use intel_phi::{IntelPhiComm, IntelPhiWorld};
pub use xeon_offload::OffloadRuntime;
