//! The Intel offload runtime model for the "Intel MPI on Xeon where it
//! offloads computation to Xeon Phi co-processors" mode (§III-B).
//!
//! MPI ranks run on the hosts (use `dcfa_mpi` with `Placement::Host` as
//! the host MPI); computation is pushed to the card through this runtime:
//! `offload_transfer`-style copies over PCIe and compute-region
//! invocations that pay a dispatch + OpenMP-team-wakeup overhead. The
//! paper's application-level optimizations are all expressible:
//! persistent buffers (allocate once), 4-KiB alignment (faster DMA is the
//! default here since our buffers are page-aligned), eliminated
//! per-iteration initialization (pay [`OffloadRuntime::new`] once), and
//! double buffering ([`OffloadRuntime::copy_in_async`] overlapping MPI).

use std::sync::Arc;

use fabric::{Buffer, Cluster, Domain, MemRef, NodeId, OutOfMemory, Transfer};
use parking_lot::Mutex;
use simcore::{Ctx, SimDuration, SimTime};

/// Handle to the offload runtime of one host process driving one Phi card.
pub struct OffloadRuntime {
    cluster: Arc<Cluster>,
    node: NodeId,
    /// The runtime funnels every `offload_transfer` through one COI DMA
    /// stream: transfers serialize against each other even across PCIe
    /// directions (observed KNC behaviour; this is what keeps the mode at
    /// ~half of DCFA-MPI's large-message rate in Fig. 10).
    dma_busy: Mutex<SimTime>,
}

impl OffloadRuntime {
    /// Initialize offloading for the card on `node`. The paper's optimized
    /// application hoists this out of the communication loop; the cost
    /// is one region invocation (device open + COI handshake).
    pub fn new(ctx: &mut Ctx, cluster: Arc<Cluster>, node: NodeId) -> Self {
        let cost = &cluster.config().cost;
        ctx.sleep(cost.offload_region_overhead);
        OffloadRuntime {
            cluster,
            node,
            dma_busy: Mutex::new(SimTime::ZERO),
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    fn phi(&self) -> MemRef {
        MemRef {
            node: self.node,
            domain: Domain::Phi,
        }
    }

    /// Allocate a persistent buffer on the card.
    pub fn alloc_phi(&self, len: u64) -> Result<Buffer, OutOfMemory> {
        self.cluster.alloc_pages(self.phi(), len)
    }

    /// Free a card buffer.
    pub fn free_phi(&self, buf: &Buffer) {
        self.cluster.free(buf);
    }

    /// Synchronous `offload_transfer` in: host → card.
    pub fn copy_in(&self, ctx: &mut Ctx, host: &Buffer, card: &Buffer) {
        let t = self.copy_in_async(ctx, host, card);
        ctx.wait_reason(&t.completion, "offload copy_in");
    }

    /// Synchronous `offload_transfer` out: card → host.
    pub fn copy_out(&self, ctx: &mut Ctx, card: &Buffer, host: &Buffer) {
        let t = self.copy_out_async(ctx, card, host);
        ctx.wait_reason(&t.completion, "offload copy_out");
    }

    /// Asynchronous copy-in (double-buffer method): returns a transfer the
    /// caller can overlap with MPI communication and wait on later. The
    /// invocation overhead is paid synchronously (pragma dispatch); the
    /// stream itself queues on the runtime's single COI DMA stream.
    pub fn copy_in_async(&self, ctx: &mut Ctx, host: &Buffer, card: &Buffer) -> Transfer {
        assert_eq!(host.mem.node, self.node);
        assert_eq!(card.mem, self.phi());
        self.queue_transfer(ctx, host, card)
    }

    /// Asynchronous copy-out.
    pub fn copy_out_async(&self, ctx: &mut Ctx, card: &Buffer, host: &Buffer) -> Transfer {
        assert_eq!(host.mem.node, self.node);
        assert_eq!(card.mem, self.phi());
        self.queue_transfer(ctx, card, host)
    }

    fn queue_transfer(&self, ctx: &mut Ctx, src: &Buffer, dst: &Buffer) -> Transfer {
        let cost = self.cluster.config().cost.clone();
        ctx.sleep(cost.offload_transfer_overhead);
        let after = {
            let busy = self.dma_busy.lock();
            (*busy).max(ctx.now())
        };
        let t = self
            .cluster
            .pci_dma_at_rate(src, dst, after, cost.offload_copy_bw);
        *self.dma_busy.lock() = t.end;
        t
    }

    /// Run a compute region on the card: pays the dispatch overhead plus
    /// the modeled kernel time (e.g. from the `apps` crate's OpenMP
    /// model), and runs `body` for the content-plane side effects (the
    /// actual arithmetic on simulated memory).
    pub fn offload_region<R>(
        &self,
        ctx: &mut Ctx,
        kernel_time: SimDuration,
        body: impl FnOnce(&Arc<Cluster>) -> R,
    ) -> R {
        let cost = &self.cluster.config().cost;
        ctx.sleep(cost.offload_region_overhead);
        let r = body(&self.cluster);
        ctx.sleep(kernel_time);
        r
    }
}
