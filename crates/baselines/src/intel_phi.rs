//! "Intel MPI on Xeon Phi co-processors" mode (paper §III-B, compared in
//! Fig. 9): MPI ranks live on the co-processors and use the MPSS stack —
//! small messages relay through SCIF to the host IB Proxy Daemon and over
//! host InfiniBand; large messages take the direct path, whose bandwidth is
//! capped by the same HCA-DMA-read-from-Phi bottleneck DCFA-MPI suffers
//! *without* the offloading send buffer. Intel MPI has no such offload
//! mode, which is why the paper measures it below 1 GB/s.
//!
//! The model implements real matching semantics (FIFO per pair, tags,
//! any-source) and moves real bytes; path timing reserves the same shared
//! PCIe/InfiniBand channels as every other traffic source in the
//! simulation. The proxy daemon itself is folded into the path model
//! (documented substitution: DESIGN.md §2).

use std::collections::VecDeque;
use std::sync::Arc;

use dcfa_mpi::{Communicator, MpiError, Rank, Request, Src, Status, Tag, TagSel};
use fabric::{Buffer, Cluster, Domain, MemRef, NodeId};
use parking_lot::Mutex;
use simcore::{Ctx, SimEvent, SimTime, Simulation};

struct Arrival {
    src: Rank,
    tag: Tag,
    data: Vec<u8>,
}

struct RankBox {
    arrivals: Mutex<VecDeque<Arrival>>,
    event: SimEvent,
}

struct WorldState {
    boxes: Vec<Arc<RankBox>>,
    nodes: Vec<NodeId>,
    /// Per ordered pair (from, to): delivery time of the last message, so
    /// later messages never overtake earlier ones (MPI non-overtaking —
    /// the proxy path and the direct path have different latencies, but
    /// the library serializes matching per pair).
    pair_chain: Mutex<std::collections::HashMap<(Rank, Rank), SimTime>>,
}

/// Shared state of one Intel-MPI-on-Phi job.
pub struct IntelPhiWorld {
    cluster: Arc<Cluster>,
    state: Arc<WorldState>,
}

impl IntelPhiWorld {
    pub fn new(cluster: Arc<Cluster>, nprocs: usize) -> Arc<IntelPhiWorld> {
        let nodes = (0..nprocs)
            .map(|r| NodeId(r % cluster.num_nodes()))
            .collect();
        let boxes = (0..nprocs)
            .map(|_| {
                Arc::new(RankBox {
                    arrivals: Mutex::new(VecDeque::new()),
                    event: SimEvent::new(),
                })
            })
            .collect();
        Arc::new(IntelPhiWorld {
            cluster,
            state: Arc::new(WorldState {
                boxes,
                nodes,
                pair_chain: Mutex::new(Default::default()),
            }),
        })
    }

    /// Launch all ranks of the job.
    pub fn launch<F>(self: &Arc<Self>, sim: &Simulation, f: F)
    where
        F: Fn(&mut Ctx, &mut IntelPhiComm) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        for r in 0..self.state.boxes.len() {
            let world = self.clone();
            let f = f.clone();
            sim.spawn(format!("intelphi-rank{r}"), move |ctx| {
                let mut comm = IntelPhiComm::new(world.clone(), r);
                f(ctx, &mut comm);
            });
        }
    }
}

enum ReqSlot {
    SendDone(Status),
    RecvPending { buf: Buffer, src: Src, tag: TagSel },
    RecvDone(Status),
    Failed(MpiError),
}

/// Per-rank communicator for the Intel-MPI-on-Phi model.
pub struct IntelPhiComm {
    world: Arc<IntelPhiWorld>,
    rank: Rank,
    node: NodeId,
    reqs: std::collections::HashMap<u64, ReqSlot>,
    next_req: u64,
}

impl IntelPhiComm {
    fn new(world: Arc<IntelPhiWorld>, rank: Rank) -> Self {
        let node = world.state.nodes[rank];
        IntelPhiComm {
            world,
            rank,
            node,
            reqs: Default::default(),
            next_req: 1,
        }
    }

    fn mailbox(&self) -> &Arc<RankBox> {
        &self.world.state.boxes[self.rank]
    }

    /// Proxy threshold: below this, messages relay through the host proxy
    /// daemons; above, the direct (DMA-read-limited) path is used.
    const PROXY_MAX: u64 = 16 << 10;

    /// Compute the delivery time of a message and reserve the channels it
    /// occupies. Returns `(send_complete, delivered)`.
    fn schedule_message(&self, ctx: &mut Ctx, dst: Rank, len: u64) -> (SimTime, SimTime) {
        let cl = &self.world.cluster;
        let cost = cl.config().cost.clone();
        let dst_node = self.world.state.nodes[dst];
        let now = ctx.now();
        let me_phi = MemRef {
            node: self.node,
            domain: Domain::Phi,
        };
        let dst_phi = MemRef {
            node: dst_node,
            domain: Domain::Phi,
        };

        if len <= Self::PROXY_MAX {
            // SCIF hop up, host IB, SCIF hop down; proxy daemon work at
            // both ends.
            let up_done =
                now + cost.scif_msg_latency + simcore::transfer_time(len.max(1), cost.scif_msg_bw);
            let host_start = up_done + cost.proxy_host_work;
            let (_, wire_done) = cl.reserve_ib_path(
                MemRef {
                    node: self.node,
                    domain: Domain::Host,
                },
                MemRef {
                    node: dst_node,
                    domain: Domain::Host,
                },
                len.max(1),
                self.node,
                host_start,
            );
            let down_done = wire_done
                + cost.proxy_host_work
                + cost.scif_msg_latency
                + simcore::transfer_time(len.max(1), cost.scif_msg_bw);
            // Sender-side completion: injection into SCIF is buffered.
            (
                now + cost.cpu_op(Domain::Phi),
                down_done + cost.cpu_op(Domain::Phi),
            )
        } else {
            // Direct path, pipelined in chunks, each paying the software
            // overhead — Phi-sourced, so DMA-read limited.
            let mut t = now;
            let mut remaining = len;
            while remaining > 0 {
                let chunk = remaining.min(cost.intel_chunk);
                t += cost.intel_chunk_overhead;
                let (_, end) = cl.reserve_ib_path(me_phi, dst_phi, chunk, self.node, t);
                t = end;
                remaining -= chunk;
            }
            (t, t + cost.cpu_op(Domain::Phi))
        }
    }

    fn try_match(&mut self, ctx: &mut Ctx) {
        let cl = self.world.cluster.clone();
        let cost = cl.config().cost.clone();
        // Pull arrivals and try to match pending receives in post order.
        loop {
            let pending: Vec<u64> = self
                .reqs
                .iter()
                .filter(|(_, s)| matches!(s, ReqSlot::RecvPending { .. }))
                .map(|(id, _)| *id)
                .collect();
            let mut matched = false;
            let mut arrivals = self.mailbox().arrivals.lock();
            'outer: for i in 0..arrivals.len() {
                let a = &arrivals[i];
                let mut ids: Vec<u64> = pending.clone();
                ids.sort_unstable(); // post order == id order
                for id in ids {
                    let Some(ReqSlot::RecvPending { buf, src, tag }) = self.reqs.get(&id) else {
                        continue;
                    };
                    let src_ok = match src {
                        Src::Rank(s) => *s == a.src,
                        Src::Any => true,
                    };
                    if !src_ok || !tag.matches(a.tag) {
                        continue;
                    }
                    let a = arrivals.remove(i).expect("index valid");
                    let buf = buf.clone();
                    drop(arrivals);
                    let slot = if a.data.len() as u64 > buf.len {
                        ReqSlot::Failed(MpiError::Truncated {
                            got: a.data.len() as u64,
                            capacity: buf.len,
                        })
                    } else {
                        cl.write(&buf, 0, &a.data);
                        ctx.sleep(cost.cpu_op(Domain::Phi));
                        ReqSlot::RecvDone(Status {
                            source: a.src,
                            tag: a.tag,
                            len: a.data.len() as u64,
                        })
                    };
                    self.reqs.insert(id, slot);
                    matched = true;
                    break 'outer;
                }
            }
            if !matched {
                break;
            }
        }
    }
}

impl Communicator for IntelPhiComm {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.world.state.boxes.len()
    }

    fn mem(&self) -> MemRef {
        MemRef {
            node: self.node,
            domain: Domain::Phi,
        }
    }

    fn cluster(&self) -> &Arc<Cluster> {
        &self.world.cluster
    }

    fn isend(
        &mut self,
        ctx: &mut Ctx,
        buf: &Buffer,
        dst: Rank,
        tag: Tag,
    ) -> Result<Request, MpiError> {
        if dst >= self.size() || dst == self.rank {
            return Err(MpiError::BadRank(dst));
        }
        let cost = self.world.cluster.config().cost.clone();
        ctx.sleep(cost.mpi_call_phi);
        let (send_done, mut delivered) = self.schedule_message(ctx, dst, buf.len);
        {
            // Enforce non-overtaking per ordered pair.
            let mut chain = self.world.state.pair_chain.lock();
            let last = chain
                .entry((self.rank, dst))
                .or_insert(simcore::SimTime::ZERO);
            delivered = delivered.max(*last);
            *last = delivered;
        }
        let data = self.world.cluster.read_vec(buf);
        let target = self.world.state.boxes[dst].clone();
        let src = self.rank;
        let sched = ctx.scheduler();
        sched.call_at(delivered, move |s| {
            target.arrivals.lock().push_back(Arrival { src, tag, data });
            target.event.notify_all(s);
        });
        let id = self.next_req;
        self.next_req += 1;
        let status = Status {
            source: dst,
            tag,
            len: buf.len,
        };
        // Sender-side completion time: park until `send_done`.
        if send_done > ctx.now() {
            ctx.sleep(send_done - ctx.now());
        }
        self.reqs.insert(id, ReqSlot::SendDone(status));
        Ok(Request(id))
    }

    fn irecv(
        &mut self,
        ctx: &mut Ctx,
        buf: &Buffer,
        src: Src,
        tag: TagSel,
    ) -> Result<Request, MpiError> {
        if let Src::Rank(s) = src {
            if s >= self.size() || s == self.rank {
                return Err(MpiError::BadRank(s));
            }
        }
        let cost = self.world.cluster.config().cost.clone();
        ctx.sleep(cost.mpi_call_phi);
        let id = self.next_req;
        self.next_req += 1;
        self.reqs.insert(
            id,
            ReqSlot::RecvPending {
                buf: buf.clone(),
                src,
                tag,
            },
        );
        self.try_match(ctx);
        Ok(Request(id))
    }

    fn wait(&mut self, ctx: &mut Ctx, req: Request) -> Result<Status, MpiError> {
        loop {
            let seen = self.mailbox().event.epoch();
            self.try_match(ctx);
            match self.reqs.get(&req.0) {
                Some(ReqSlot::SendDone(_)) | Some(ReqSlot::RecvDone(_)) => {
                    return match self.reqs.remove(&req.0) {
                        Some(ReqSlot::SendDone(s)) | Some(ReqSlot::RecvDone(s)) => Ok(s),
                        _ => unreachable!(),
                    };
                }
                Some(ReqSlot::Failed(_)) => {
                    return match self.reqs.remove(&req.0) {
                        Some(ReqSlot::Failed(e)) => Err(e),
                        _ => unreachable!(),
                    };
                }
                Some(ReqSlot::RecvPending { .. }) => {
                    let ev = self.mailbox().event.clone();
                    ctx.wait_event(&ev, seen, "intel-phi recv");
                }
                None => return Err(MpiError::BadRequest),
            }
        }
    }
}
