//! Tests for the Intel MPI baseline models: correctness of the proxy-mode
//! communicator, calibration of its latency/bandwidth behaviour against
//! the paper's numbers, and the offload runtime's cost structure.

use std::sync::Arc;

use baselines::{IntelPhiWorld, OffloadRuntime};
use dcfa_mpi::{Communicator, Src, TagSel};
use fabric::{Cluster, ClusterConfig, Domain, MemRef, NodeId};
use parking_lot::Mutex;
use simcore::{SimDuration, Simulation};

fn setup(nodes: usize) -> (Simulation, Arc<Cluster>) {
    let sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nodes));
    (sim, cluster)
}

#[test]
fn intel_phi_send_recv_roundtrip() {
    let (mut sim, cluster) = setup(2);
    let world = IntelPhiWorld::new(cluster.clone(), 2);
    let ok = Arc::new(Mutex::new(false));
    let ok2 = ok.clone();
    world.launch(&sim, move |ctx, comm| {
        let buf = comm.cluster().alloc_pages(comm.mem(), 4096).unwrap();
        if comm.rank() == 0 {
            comm.cluster().write(&buf, 0, &[0x42; 4096]);
            comm.send(ctx, &buf, 1, 5).unwrap();
        } else {
            let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(5)).unwrap();
            assert_eq!(st.len, 4096);
            assert_eq!(comm.cluster().read_vec(&buf), vec![0x42; 4096]);
            *ok2.lock() = true;
        }
    });
    sim.run_expect();
    assert!(*ok.lock());
}

#[test]
fn intel_phi_large_message_roundtrip() {
    let (mut sim, cluster) = setup(2);
    let world = IntelPhiWorld::new(cluster.clone(), 2);
    let ok = Arc::new(Mutex::new(false));
    let ok2 = ok.clone();
    world.launch(&sim, move |ctx, comm| {
        let len = 2 << 20;
        let buf = comm.cluster().alloc_pages(comm.mem(), len).unwrap();
        if comm.rank() == 0 {
            let data: Vec<u8> = (0..len).map(|i| (i % 255) as u8).collect();
            comm.cluster().write(&buf, 0, &data);
            comm.send(ctx, &buf, 1, 1).unwrap();
        } else {
            comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
            let got = comm.cluster().read_vec(&buf);
            assert_eq!(got[12345], (12345 % 255) as u8);
            *ok2.lock() = true;
        }
    });
    sim.run_expect();
    assert!(*ok.lock());
}

#[test]
fn intel_phi_any_source_and_tags() {
    let (mut sim, cluster) = setup(3);
    let world = IntelPhiWorld::new(cluster.clone(), 3);
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = got.clone();
    world.launch(&sim, move |ctx, comm| {
        if comm.rank() < 2 {
            let buf = comm.cluster().alloc_pages(comm.mem(), 64).unwrap();
            comm.cluster().write(&buf, 0, &[comm.rank() as u8; 64]);
            comm.send(ctx, &buf, 2, 10 + comm.rank() as u32).unwrap();
        } else {
            let buf = comm.cluster().alloc_pages(comm.mem(), 64).unwrap();
            for _ in 0..2 {
                let st = comm.recv(ctx, &buf, Src::Any, TagSel::Any).unwrap();
                g2.lock().push((st.source, st.tag));
            }
        }
    });
    sim.run_expect();
    let mut got = got.lock().clone();
    got.sort();
    assert_eq!(got, vec![(0, 10), (1, 11)]);
}

#[test]
fn intel_phi_4byte_rtt_near_28us() {
    // Paper: "For 4bytes round trip blocking communication, the 'Intel MPI
    // on Xeon Phi co-processors' mode spends 28 microseconds".
    let (mut sim, cluster) = setup(2);
    let world = IntelPhiWorld::new(cluster.clone(), 2);
    let rtt = Arc::new(Mutex::new(0.0f64));
    let r2 = rtt.clone();
    world.launch(&sim, move |ctx, comm| {
        let buf = comm.cluster().alloc_pages(comm.mem(), 4).unwrap();
        let iters = 20;
        if comm.rank() == 0 {
            let t0 = ctx.now();
            for _ in 0..iters {
                comm.send(ctx, &buf, 1, 0).unwrap();
                comm.recv(ctx, &buf, Src::Rank(1), TagSel::Tag(0)).unwrap();
            }
            *r2.lock() = (ctx.now() - t0).as_micros_f64() / iters as f64;
        } else {
            for _ in 0..iters {
                comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(0)).unwrap();
                comm.send(ctx, &buf, 0, 0).unwrap();
            }
        }
    });
    sim.run_expect();
    let rtt = *rtt.lock();
    assert!(
        (20.0..36.0).contains(&rtt),
        "4B RTT = {rtt:.1}us, expected ~28us"
    );
}

#[test]
fn intel_phi_large_bandwidth_below_1gbs() {
    // Paper Fig. 9: "'Intel MPI on Xeon Phi co-processors' mode cannot get
    // bandwidth greater than 1 Gbytes/s".
    let (mut sim, cluster) = setup(2);
    let world = IntelPhiWorld::new(cluster.clone(), 2);
    let bw = Arc::new(Mutex::new(0.0f64));
    let b2 = bw.clone();
    world.launch(&sim, move |ctx, comm| {
        let len = 4u64 << 20;
        let buf = comm.cluster().alloc_pages(comm.mem(), len).unwrap();
        if comm.rank() == 0 {
            let t0 = ctx.now();
            comm.send(ctx, &buf, 1, 0).unwrap();
            comm.recv(ctx, &buf, Src::Rank(1), TagSel::Tag(0)).unwrap();
            let rtt = ctx.now() - t0;
            *b2.lock() = 2.0 * len as f64 / rtt.as_secs_f64();
        } else {
            comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(0)).unwrap();
            comm.send(ctx, &buf, 0, 0).unwrap();
        }
    });
    sim.run_expect();
    let bw = *bw.lock();
    assert!(
        bw < 1.1e9,
        "Intel-Phi large bandwidth {:.2} GB/s should be < ~1",
        bw / 1e9
    );
    assert!(bw > 0.5e9, "sanity: {:.2} GB/s", bw / 1e9);
}

#[test]
fn offload_runtime_copy_roundtrip() {
    let (mut sim, cluster) = setup(1);
    let cl = cluster.clone();
    sim.spawn("host-rank", move |ctx| {
        let rt = OffloadRuntime::new(ctx, cl.clone(), NodeId(0));
        let host = cl
            .alloc_pages(
                MemRef {
                    node: NodeId(0),
                    domain: Domain::Host,
                },
                8192,
            )
            .unwrap();
        let card = rt.alloc_phi(8192).unwrap();
        cl.write(&host, 0, &[9u8; 8192]);
        rt.copy_in(ctx, &host, &card);
        assert_eq!(cl.read_vec(&card), vec![9u8; 8192]);
        cl.write(&card, 0, &[7u8; 8192]);
        rt.copy_out(ctx, &card, &host);
        assert_eq!(cl.read_vec(&host), vec![7u8; 8192]);
        rt.free_phi(&card);
    });
    sim.run_expect();
}

#[test]
fn offload_transfer_overhead_dominates_small_copies() {
    // The 12x of Fig. 10 comes from the fixed per-transfer overhead.
    let (mut sim, cluster) = setup(1);
    let cl = cluster.clone();
    let times = Arc::new(Mutex::new((0u64, 0u64)));
    let t2 = times.clone();
    sim.spawn("host-rank", move |ctx| {
        let rt = OffloadRuntime::new(ctx, cl.clone(), NodeId(0));
        let host = cl
            .alloc_pages(
                MemRef {
                    node: NodeId(0),
                    domain: Domain::Host,
                },
                1 << 20,
            )
            .unwrap();
        let card = rt.alloc_phi(1 << 20).unwrap();
        let t0 = ctx.now();
        rt.copy_in(ctx, &host.slice(0, 64), &card.slice(0, 64));
        let small = (ctx.now() - t0).as_nanos();
        let t1 = ctx.now();
        rt.copy_in(ctx, &host, &card);
        let large = (ctx.now() - t1).as_nanos();
        *t2.lock() = (small, large);
    });
    sim.run_expect();
    let (small, large) = *times.lock();
    let overhead = cluster.config().cost.offload_transfer_overhead.as_nanos();
    assert!(small >= overhead, "small copy must pay the fixed overhead");
    // A 64B copy is within 5% of pure overhead.
    assert!((small as f64) < overhead as f64 * 1.05);
    // 1 MiB at ~3 GB/s adds ~350us on top.
    assert!(large > small * 3);
}

#[test]
fn offload_copies_serialize_on_the_coi_stream() {
    // The runtime funnels all offload transfers through one COI DMA
    // stream: in+out of the same size take ~double one copy, even though
    // the PCIe directions could physically overlap. (This is what keeps
    // the offload mode at about half of DCFA-MPI's rate for large
    // messages in Fig. 10.)
    let (mut sim, cluster) = setup(1);
    let cl = cluster.clone();
    let elapsed = Arc::new(Mutex::new((0u64, 0u64)));
    let e2 = elapsed.clone();
    sim.spawn("host-rank", move |ctx| {
        let rt = OffloadRuntime::new(ctx, cl.clone(), NodeId(0));
        let len = 4 << 20;
        let host = cl
            .alloc_pages(
                MemRef {
                    node: NodeId(0),
                    domain: Domain::Host,
                },
                2 * len,
            )
            .unwrap();
        let card = rt.alloc_phi(2 * len).unwrap();
        let t0 = ctx.now();
        rt.copy_in(ctx, &host.slice(0, len), &card.slice(0, len));
        let one = (ctx.now() - t0).as_nanos();
        let t1 = ctx.now();
        let a = rt.copy_in_async(ctx, &host.slice(0, len), &card.slice(0, len));
        let b = rt.copy_out_async(ctx, &card.slice(len, len), &host.slice(len, len));
        ctx.wait(&a.completion);
        ctx.wait(&b.completion);
        let both = (ctx.now() - t1).as_nanos();
        *e2.lock() = (one, both);
    });
    sim.run_expect();
    let (one, both) = *elapsed.lock();
    let ratio = both as f64 / one as f64;
    assert!(
        (1.8..2.2).contains(&ratio),
        "copies must serialize: one={one} both={both} ratio={ratio:.2}"
    );
}

#[test]
fn offload_region_charges_dispatch_plus_kernel() {
    let (mut sim, cluster) = setup(1);
    let cl = cluster.clone();
    let t = Arc::new(Mutex::new(0u64));
    let t2 = t.clone();
    sim.spawn("host-rank", move |ctx| {
        let rt = OffloadRuntime::new(ctx, cl.clone(), NodeId(0));
        let t0 = ctx.now();
        let v = rt.offload_region(ctx, SimDuration::from_micros(500), |_cl| 41 + 1);
        assert_eq!(v, 42);
        *t2.lock() = (ctx.now() - t0).as_nanos();
    });
    sim.run_expect();
    let cost = cluster.config().cost.clone();
    assert_eq!(
        *t.lock(),
        (cost.offload_region_overhead + SimDuration::from_micros(500)).as_nanos()
    );
}
