//! Regression tests for the entry/death TOCTOU found by the chaos
//! fuzzer (seed 1): an operation whose entry guards passed while the
//! peer was still alive could park in the entry sleep (or a ring-credit
//! wait), get skipped by the one-shot death reap that ran meanwhile,
//! and then enqueue toward the corpse — stranding the caller forever
//! while the heartbeat sidecars kept virtual time alive (a livelock,
//! not a deadlock, so nothing ever reported it).
//!
//! The minimized reproducer is an 8-rank soak with one kill landing
//! mid-round (op 13, while neighbors are inside their entry calls) and
//! a second kill scheduled near the end of phase 1 (op 59) that the
//! first wedge used to keep from ever firing.

use bench::{kill_soak_run, KILL_SOAK_MAX_AFTER_OPS};
use dcfa_mpi::KillSpec;

fn kills(specs: &[(u64, usize)]) -> Vec<KillSpec> {
    specs
        .iter()
        .map(|&(after_ops, rank)| KillSpec { rank, after_ops })
        .collect()
}

/// The minimized chaos schedule: early death racing entry calls plus a
/// late second death. Used to livelock before the late failure gates in
/// isend/irecv and the idempotent corpse sweep on QP-flush errors.
#[test]
fn mid_entry_kill_does_not_strand_survivors() {
    let run = kill_soak_run(8, 1, true, &kills(&[(13, 3), (59, 6)]));
    run.healthy().unwrap_or_else(|violations| {
        panic!("kill soak unhealthy: {violations:?}");
    });
    assert_eq!(run.expected_shrunk(), 6);
}

/// The same shape must also recover on the per-pair ring path (no SRQ)
/// and stay bit-for-bit deterministic across runs.
#[test]
fn mid_entry_kill_recovers_without_srq_and_replays_identically() {
    let ks = kills(&[(13, 3), (59, 6)]);
    let a = kill_soak_run(8, 1, false, &ks);
    a.healthy().unwrap_or_else(|violations| {
        panic!("kill soak unhealthy: {violations:?}");
    });
    let b = kill_soak_run(8, 1, false, &ks);
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "recovery from a mid-entry kill must replay deterministically"
    );
}

/// A kill on the very last phase-1 operation: the corpse dies after
/// every survivor has already posted toward it, so recovery leans
/// entirely on the reap/flush paths rather than the entry guards.
#[test]
fn last_op_kill_recovers() {
    assert_eq!(KILL_SOAK_MAX_AFTER_OPS, 65);
    let run = kill_soak_run(8, 1, true, &kills(&[(KILL_SOAK_MAX_AFTER_OPS, 2)]));
    run.healthy().unwrap_or_else(|violations| {
        panic!("kill soak unhealthy: {violations:?}");
    });
    assert_eq!(run.expected_shrunk(), 7);
}
