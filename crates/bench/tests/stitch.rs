//! Integration gates for the cross-rank causal tracing subsystem: the
//! stitched lifecycle DAG must account for (virtually) all of every
//! completed message's end-to-end time on every protocol path, the
//! critical path must be bit-for-bit identical across DES shard counts,
//! and the Perfetto export must self-validate.

use bench::stitch::{self, MsgTimeline};
use dcfa_mpi::KillSpec;
use fabric::ClusterConfig;

/// ISSUE 9 acceptance bar: the DAG explains at least this fraction of
/// each completed message's lifetime. (The stitcher's telescoping edges
/// make untruncated timelines cover 1.0 exactly, so anything below
/// signals ring drops or a missing instrumentation point.)
const MIN_COVERAGE: f64 = 0.95;

fn assert_full_coverage(messages: &[MsgTimeline], label: &str) {
    let mut completed = 0usize;
    for m in messages {
        let Some(cov) = m.coverage() else { continue };
        completed += 1;
        assert!(
            cov >= MIN_COVERAGE,
            "{label}: message {:?} ({} B) covered only {:.1}% of its lifetime",
            m.id,
            m.len,
            cov * 100.0
        );
    }
    assert!(completed > 0, "{label}: no completed messages to check");
}

/// The 4-rank mixed run exercises eager, both rendezvous flavours and
/// the offloading send buffer; every completed message's stitched
/// timeline must cover its lifetime, and the Perfetto export of the same
/// stream must pass schema validation.
#[test]
fn mixed_run_stitches_with_full_coverage() {
    let run = bench::observability_run(&ClusterConfig::paper());
    assert_eq!(run.dropped, 0, "mixed run must not saturate the trace ring");
    let st = stitch::stitch(&run.events, run.dropped);
    assert!(st.warnings.is_empty(), "{:?}", st.warnings);
    assert_full_coverage(&st.messages, "mixed");
    // Rendezvous messages (64 KiB) are in the DAG, not only eager ones.
    assert!(
        st.messages.iter().any(|m| m.len >= 64 << 10 && m.complete),
        "no completed rendezvous-size message stitched"
    );
    let json = stitch::trace_json(&run.events);
    let stats = stitch::validate_trace_json(&json).expect("export is schema-valid");
    assert!(stats.flows > 0, "cross-rank edges must emit flow pairs");
    assert_eq!(stats.tracks, 4, "one track per rank");
}

/// The kill soak (eager + SRQ reorder stash + rank death) must stitch
/// and cover identically, and its critical path must not change when the
/// same virtual cluster runs on 1, 2 or 4 DES shards — the trace stream
/// is part of the shard-invariance contract (PR 7), and the critical
/// path is a pure function of it.
#[test]
fn kill_soak_critical_path_is_shard_invariant_with_full_coverage() {
    const RANKS: usize = 16;
    let kills = [
        KillSpec {
            rank: 3,
            after_ops: 5,
        },
        KillSpec {
            rank: 11,
            after_ops: 20,
        },
    ];
    let mut paths = Vec::new();
    let mut fingerprints = Vec::new();
    for shards in [1usize, 2, 4] {
        let run = bench::kill_soak_run(RANKS, shards, true, &kills);
        run.healthy().expect("kill soak gates pass");
        assert_eq!(run.obs.dropped, 0, "shards={shards}: trace ring saturated");
        let st = stitch::stitch(&run.obs.events, run.obs.dropped);
        assert_full_coverage(&st.messages, &format!("kill/shards={shards}"));
        paths.push(stitch::critical_path(&run.obs.events).expect("events present"));
        fingerprints.push(run.fingerprint());
    }
    assert_eq!(paths[0], paths[1], "critical path differs on 2 shards");
    assert_eq!(paths[0], paths[2], "critical path differs on 4 shards");
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "run fingerprint differs on 2 shards"
    );
    assert_eq!(
        fingerprints[0], fingerprints[2],
        "run fingerprint differs on 4 shards"
    );
    // The path is non-trivial: it spans time and crosses the wire.
    assert!(paths[0].total_ns > 0);
    assert!(paths[0].edges > 1);
    assert_eq!(
        paths[0].total_ns,
        paths[0].breakdown.iter().map(|(_, v)| v).sum::<u64>(),
        "breakdown must telescope to the total"
    );
}

/// The metrics report of a traced run carries the critical_path section
/// and it round-trips through the comparator at zero tolerance.
#[test]
fn critical_path_report_section_round_trips() {
    let run = bench::observability_run(&ClusterConfig::paper());
    let report = bench::metrics_report_json(&run);
    assert!(
        report.contains("\"critical_path\":{\"total_ns\":"),
        "report lacks the critical_path section"
    );
    let (violations, warnings) =
        bench::compare_reports_full(&report, &report, 0.0).expect("self-compare parses");
    assert!(violations.is_empty(), "{violations:?}");
    assert!(warnings.is_empty(), "{warnings:?}");
}
