//! End-to-end regression tests for the `repro --compare-metrics` gate:
//! the process must exit 1 whenever a phase present in the baseline is
//! missing from the candidate report (a silently dropped phase used to
//! evade the p99 drift check entirely), when a new phase appears that the
//! baseline does not know, and when wall-clock throughput falls below a
//! baseline floor. Exit codes are observed on the real binary via
//! `CARGO_BIN_EXE_repro`.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dcfa-compare-{}-{name}", std::process::id()));
    p
}

/// Run the profiled workload once and return its serialized report.
fn current_report() -> String {
    let path = tmp("current.json");
    let out = repro()
        .args(["--metrics-json", path.to_str().unwrap()])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "metrics-json run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = std::fs::read_to_string(&path).expect("report written");
    let _ = std::fs::remove_file(&path);
    report
}

/// Exit status of `repro --compare-metrics <baseline>` with a generous
/// tolerance, so only structural violations (phases, floors) can fail.
fn compare_exit(baseline: &str, label: &str) -> (i32, String) {
    let path = tmp(label);
    std::fs::write(&path, baseline).unwrap();
    let out = repro()
        .args(["--compare-metrics", path.to_str().unwrap()])
        .args(["--tolerance", "75"])
        .output()
        .expect("spawn repro");
    let _ = std::fs::remove_file(&path);
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().expect("exit code"), text)
}

#[test]
fn phase_mismatches_and_floors_gate_the_exit_code() {
    let report = current_report();

    // Sanity: the run is virtually deterministic, so comparing a fresh
    // run against its own report passes.
    let (code, text) = compare_exit(&report, "self.json");
    assert_eq!(code, 0, "self-compare must pass:\n{text}");

    // Baseline knows a phase (Backoff — never produced by the clean
    // profiled run) that the candidate does not: exit 1.
    let marker = "\"phases\":[\n";
    let idx = report.find(marker).expect("phases array") + marker.len();
    let mut with_extra = report.clone();
    with_extra.insert_str(
        idx,
        "  {\"phase\":\"Backoff\",\"count\":1,\"sum_ns\":10,\"min_ns\":10,\
         \"max_ns\":10,\"mean_ns\":10,\"p50_ns\":10,\"p90_ns\":10,\
         \"p99_ns\":10},\n",
    );
    let (code, text) = compare_exit(&with_extra, "missing-in-candidate.json");
    assert_eq!(code, 1, "dropped phase must fail the gate:\n{text}");
    assert!(
        text.contains("missing from current"),
        "violation names the dropped phase:\n{text}"
    );

    // Baseline is missing a phase the candidate produces: exit 1 in the
    // other direction (the baseline no longer describes the code). Drop
    // the first phases entry — it always carries a trailing comma, so the
    // remainder stays valid JSON.
    let line_end = report[idx..].find('\n').expect("phase line") + idx + 1;
    let mut without_first = report.clone();
    without_first.replace_range(idx..line_end, "");
    let (code, text) = compare_exit(&without_first, "new-in-candidate.json");
    assert_eq!(code, 1, "new phase must fail the gate:\n{text}");
    assert!(
        text.contains("absent from baseline"),
        "violation names the new phase:\n{text}"
    );

    // Throughput floor: an absurdly high floor fails (exit 1), a trivial
    // floor passes — the check is one-sided.
    let schema_line_end = report.find(",\n").expect("schema line") + 2;
    let mut high_floor = report.clone();
    high_floor.insert_str(
        schema_line_end,
        "\"throughput_floor\":{\"events_per_sec\":1e15},\n",
    );
    let (code, text) = compare_exit(&high_floor, "floor-high.json");
    assert_eq!(code, 1, "unreachable floor must fail:\n{text}");
    assert!(text.contains("throughput floor"), "{text}");

    let mut low_floor = report.clone();
    low_floor.insert_str(
        schema_line_end,
        "\"throughput_floor\":{\"events_per_sec\":1.0},\n",
    );
    let (code, text) = compare_exit(&low_floor, "floor-low.json");
    assert_eq!(code, 0, "trivial floor must pass:\n{text}");
}
