//! The machine-readable performance report behind `repro --metrics-json`
//! and the regression gate behind `repro --compare-metrics`.
//!
//! # Schema versioning
//!
//! Every report carries `"schema": "dcfa-mpi-metrics/1"`. The comparator
//! refuses to diff reports with different schema ids. Additive changes
//! (new counters, new phases) keep the version; renaming or re-meaning a
//! field bumps it — see DESIGN.md §13.
//!
//! # Comparison semantics
//!
//! The gate is a *symmetric drift* check: for each per-phase p99 and for
//! the aggregate bandwidth, `|current - baseline| / baseline` must stay
//! within the tolerance. Regressions beyond tolerance fail for the obvious
//! reason; improvements beyond tolerance also fail, because they mean the
//! checked-in baseline no longer describes the code and must be refreshed
//! (otherwise it would mask a later regression of the same magnitude).

use std::fmt::Write as _;

use dcfa_mpi::{HistogramSnapshot, MpiConfig, Phase};

use crate::json::{self, JsonValue};
use crate::stitch;
use crate::ObservabilityRun;

/// Schema identifier stamped into (and required of) every report.
pub const METRICS_SCHEMA: &str = "dcfa-mpi-metrics/1";

fn push_kv_num(out: &mut String, key: &str, v: f64) {
    json::write_str(out, key);
    out.push(':');
    json::write_num(out, v);
}

fn push_hist_fields(out: &mut String, s: &HistogramSnapshot) {
    push_kv_num(out, "count", s.count as f64);
    out.push(',');
    push_kv_num(out, "sum_ns", s.sum as f64);
    out.push(',');
    push_kv_num(out, "min_ns", if s.is_empty() { 0.0 } else { s.min as f64 });
    out.push(',');
    push_kv_num(out, "max_ns", s.max as f64);
    out.push(',');
    push_kv_num(out, "mean_ns", s.mean());
    out.push(',');
    push_kv_num(out, "p50_ns", s.p50());
    out.push(',');
    push_kv_num(out, "p90_ns", s.p90());
    out.push(',');
    push_kv_num(out, "p99_ns", s.p99());
}

/// Serialize the run's metrics as a versioned JSON report: config
/// fingerprint, aggregated counters, derived bandwidth, per-phase
/// roll-ups with percentiles, and the full per-(phase, size-class, peer)
/// histograms with sparse bucket lists.
pub fn metrics_report_json(run: &ObservabilityRun) -> String {
    let cfg: &MpiConfig = &run.cfg;
    let mut out = String::with_capacity(16 << 10);
    out.push_str("{\n");
    let _ = writeln!(out, "\"schema\":\"{METRICS_SCHEMA}\",");

    // Config fingerprint: every knob that shapes the latency distributions.
    out.push_str("\"config\":{");
    let _ = write!(out, "\"ranks\":{},", run.ranks);
    let _ = write!(out, "\"placement\":\"{:?}\",", cfg.placement);
    let _ = write!(out, "\"eager_threshold\":{},", cfg.eager_threshold);
    match cfg.offload_threshold {
        Some(t) => {
            let _ = write!(out, "\"offload_threshold\":{t},");
        }
        None => out.push_str("\"offload_threshold\":null,"),
    }
    let _ = write!(out, "\"mr_cache_capacity\":{},", cfg.mr_cache_capacity);
    let _ = write!(out, "\"ring_slots\":{},", cfg.ring_slots);
    let _ = write!(out, "\"ring_slot_payload\":{},", cfg.ring_slot_payload);
    match cfg.srq_depth {
        Some(d) => {
            let _ = write!(out, "\"srq_depth\":{d}");
        }
        None => out.push_str("\"srq_depth\":null"),
    }
    out.push_str("},\n");

    let _ = writeln!(out, "\"elapsed_ns\":{},", run.elapsed_ns);

    // Wall-clock throughput of the simulator itself. These depend on the
    // machine that ran the report, so the comparator gates them as floors
    // (see `throughput_floor`), never as symmetric drift.
    let wall_secs = run.wall_ns as f64 / 1e9;
    let events_per_sec = if run.wall_ns == 0 {
        0.0
    } else {
        run.sim_events as f64 / wall_secs
    };
    let ops_per_sec = if run.wall_ns == 0 {
        0.0
    } else {
        run.mpi_ops as f64 / wall_secs
    };
    out.push_str("\"wall\":{");
    let _ = write!(
        out,
        "\"wall_ns\":{},\"sim_events\":{},\"mpi_ops\":{},",
        run.wall_ns, run.sim_events, run.mpi_ops
    );
    push_kv_num(&mut out, "events_per_sec", events_per_sec);
    out.push(',');
    push_kv_num(&mut out, "ops_per_sec", ops_per_sec);
    out.push_str("},\n");

    // Counters aggregated across ranks.
    let mut bytes_sent = 0u64;
    let mut bytes_received = 0u64;
    let mut eager_sends = 0u64;
    let mut rndv_sends = 0u64;
    let mut offload_syncs = 0u64;
    let mut packets = 0u64;
    let mut mr_hits = 0u64;
    let mut mr_misses = 0u64;
    for r in &run.reports {
        bytes_sent += r.comm.bytes_sent;
        bytes_received += r.comm.bytes_received;
        eager_sends += r.comm.eager_sends;
        rndv_sends += r.comm.rndv_sends;
        offload_syncs += r.comm.offload_syncs;
        packets += r.comm.packets_processed;
        mr_hits += r.mr_cache.hits;
        mr_misses += r.mr_cache.misses;
    }
    out.push_str("\"counters\":{");
    let _ = write!(
        out,
        "\"bytes_sent\":{bytes_sent},\"bytes_received\":{bytes_received},\
         \"eager_sends\":{eager_sends},\"rndv_sends\":{rndv_sends},\
         \"offload_syncs\":{offload_syncs},\"packets_processed\":{packets},\
         \"mr_cache_hits\":{mr_hits},\"mr_cache_misses\":{mr_misses}"
    );
    out.push_str("},\n");

    // Scale counters: how many QP pairs lazy connection establishment
    // actually touched, the per-rank communication-buffer footprint, and
    // the SRQ pool's peak occupancy (0 on the per-pair ring path).
    let pairs: u64 = run.reports.iter().map(|r| r.comm.pairs_established).sum();
    let bytes_per_rank = run
        .reports
        .iter()
        .map(|r| r.comm.comm_buffer_bytes)
        .max()
        .unwrap_or(0);
    let srq_hw = run
        .reports
        .iter()
        .map(|r| r.comm.srq_highwater)
        .max()
        .unwrap_or(0);
    out.push_str("\"scale\":{");
    let _ = write!(
        out,
        "\"ranks\":{},\"established_pairs\":{pairs},\
         \"bytes_per_rank\":{bytes_per_rank},\"srq_highwater\":{srq_hw}",
        run.ranks
    );
    out.push_str("},\n");

    // Failure-plane counters, present only when the run had the failure
    // subsystem armed (kill soaks). Additive: readers of failure-less
    // reports are unaffected, so the schema version stays.
    if let Some(f) = &run.failures {
        out.push_str("\"failures\":{");
        let _ = write!(
            out,
            "\"kills\":{},\"detections\":{},\"detection_latency_p99_ns\":{},\
             \"revokes\":{},\"shrinks\":{},\"reclaimed\":{}",
            f.kills, f.detections, f.detection_latency_p99_ns, f.revokes, f.shrinks, f.reclaimed
        );
        out.push_str("},\n");
    }

    // Critical path of the traced run (additive, like `failures`): the
    // heaviest causal chain through the stitched message-lifecycle DAG,
    // split by edge kind. Virtual-time, hence deterministic — the
    // comparator gates it at the drift tolerance when both sides have it.
    if let Some(cp) = stitch::critical_path(&run.events) {
        out.push_str("\"critical_path\":{");
        let _ = write!(out, "\"total_ns\":{},\"edges\":{}", cp.total_ns, cp.edges);
        for (kind, ns) in &cp.breakdown {
            let _ = write!(out, ",\"{kind}_ns\":{ns}");
        }
        out.push_str("},\n");
    }

    // Aggregate payload bandwidth over the run's virtual lifetime.
    let bw_gbs = if run.elapsed_ns == 0 {
        0.0
    } else {
        bytes_sent as f64 / run.elapsed_ns as f64 // B/ns == GB/s
    };
    out.push_str("\"bandwidth_gbs\":");
    json::write_num(&mut out, bw_gbs);
    out.push_str(",\n");

    // Per-phase roll-ups (all size classes and peers merged).
    out.push_str("\"phases\":[\n");
    let phases = run.metrics.merged_by_phase();
    for (i, (phase, snap)) in phases.iter().enumerate() {
        out.push_str("  {");
        let _ = write!(out, "\"phase\":\"{}\",", phase.name());
        push_hist_fields(&mut out, snap);
        out.push('}');
        if i + 1 < phases.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\n");

    // Full histograms, keyed and with sparse (bucket, count) pairs.
    out.push_str("\"histograms\":[\n");
    let hists = run.metrics.snapshot();
    for (i, (key, snap)) in hists.iter().enumerate() {
        out.push_str("  {");
        let _ = write!(
            out,
            "\"phase\":\"{}\",\"size_class\":{},",
            key.phase.name(),
            key.size_class
        );
        match key.peer {
            Some(p) => {
                let _ = write!(out, "\"peer\":{p},");
            }
            None => out.push_str("\"peer\":null,"),
        }
        push_hist_fields(&mut out, snap);
        out.push_str(",\"buckets\":[");
        let mut first = true;
        for (b, &c) in snap.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[{b},{c}]");
        }
        out.push_str("]}");
        if i + 1 < hists.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

fn phase_p99s(doc: &JsonValue) -> Result<Vec<(String, f64)>, String> {
    let phases = doc
        .get("phases")
        .and_then(JsonValue::as_arr)
        .ok_or("report has no \"phases\" array")?;
    let mut out = Vec::new();
    for p in phases {
        let name = p
            .get("phase")
            .and_then(JsonValue::as_str)
            .ok_or("phase entry without a \"phase\" name")?;
        if Phase::parse(name).is_none() {
            return Err(format!("unknown phase {name:?} in report"));
        }
        let p99 = p
            .get("p99_ns")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("phase {name} has no numeric p99_ns"))?;
        out.push((name.to_string(), p99));
    }
    Ok(out)
}

fn drift_pct(base: f64, cur: f64) -> f64 {
    if base == 0.0 {
        if cur == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (cur - base).abs() / base * 100.0
    }
}

/// Additive report sections (each may be absent from old reports) and the
/// numeric keys the comparator gates inside them. Presence is asymmetric
/// by design — see [`compare_reports_full`].
const ADDITIVE_SECTIONS: &[(&str, &[&str])] = &[
    ("scale", &["established_pairs", "bytes_per_rank"]),
    (
        "failures",
        &[
            "kills",
            "detections",
            "detection_latency_p99_ns",
            "revokes",
            "shrinks",
            "reclaimed",
        ],
    ),
    (
        "critical_path",
        &[
            "total_ns",
            "edges",
            "wire_ns",
            "stash_dwell_ns",
            "credit_stall_ns",
            "daemon_ns",
            "rdma_ns",
            "host_copy_ns",
            "local_ns",
        ],
    ),
];

/// Diff two serialized reports under a symmetric drift tolerance (in
/// percent). See [`compare_reports_full`]; this wrapper drops the
/// warnings and returns only the gating violations.
pub fn compare_reports(
    baseline: &str,
    current: &str,
    tolerance_pct: f64,
) -> Result<Vec<String>, String> {
    compare_reports_full(baseline, current, tolerance_pct).map(|(v, _)| v)
}

/// Diff two serialized reports under a symmetric drift tolerance (in
/// percent). `Ok((violations, warnings))` — empty violations means the
/// gate passes; `Err` means one of the inputs could not be parsed or is
/// not a metrics report.
///
/// Additive sections (`scale`, `failures`, `critical_path`) gate
/// *asymmetrically*: present on both sides → per-key drift check; only in
/// the baseline → a warning (an old baseline must keep passing against a
/// candidate whose run type doesn't produce the section); only in the
/// candidate → a violation, because the baseline no longer describes what
/// the code emits and silently skipping would let the new section regress
/// unwatched forever (refresh the baseline instead).
pub fn compare_reports_full(
    baseline: &str,
    current: &str,
    tolerance_pct: f64,
) -> Result<(Vec<String>, Vec<String>), String> {
    let base = json::parse(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = json::parse(current).map_err(|e| format!("current: {e}"))?;
    for (label, doc) in [("baseline", &base), ("current", &cur)] {
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(METRICS_SCHEMA) => {}
            Some(other) => {
                return Err(format!(
                    "{label}: schema {other:?} does not match {METRICS_SCHEMA:?}"
                ))
            }
            None => return Err(format!("{label}: not a metrics report (no schema)")),
        }
    }

    let mut violations = Vec::new();

    let base_bw = base
        .get("bandwidth_gbs")
        .and_then(JsonValue::as_f64)
        .ok_or("baseline: no numeric bandwidth_gbs")?;
    let cur_bw = cur
        .get("bandwidth_gbs")
        .and_then(JsonValue::as_f64)
        .ok_or("current: no numeric bandwidth_gbs")?;
    let bw_drift = drift_pct(base_bw, cur_bw);
    if bw_drift > tolerance_pct {
        violations.push(format!(
            "bandwidth_gbs drifted {bw_drift:.1}% ({base_bw:.4} -> {cur_bw:.4}), \
             tolerance {tolerance_pct}%"
        ));
    }

    let base_phases = phase_p99s(&base).map_err(|e| format!("baseline: {e}"))?;
    let cur_phases = phase_p99s(&cur).map_err(|e| format!("current: {e}"))?;
    for (name, base_p99) in &base_phases {
        match cur_phases.iter().find(|(n, _)| n == name) {
            None => violations.push(format!(
                "phase {name}: present in baseline but missing from current run"
            )),
            Some((_, cur_p99)) => {
                let d = drift_pct(*base_p99, *cur_p99);
                if d > tolerance_pct {
                    violations.push(format!(
                        "phase {name}: p99 drifted {d:.1}% ({base_p99:.0} ns -> {cur_p99:.0} ns), \
                         tolerance {tolerance_pct}%"
                    ));
                }
            }
        }
    }
    for (name, _) in &cur_phases {
        if !base_phases.iter().any(|(n, _)| n == name) {
            violations.push(format!(
                "phase {name}: new in current run, absent from baseline (refresh the baseline)"
            ));
        }
    }

    // Additive-section gates. All their metrics are deterministic in
    // virtual time (connection counts, failure-plane outcomes, critical
    // path), but stay under the symmetric drift tolerance so a deliberate
    // workload change only requires a baseline refresh, not a schema
    // bump. Presence is checked per the asymmetric rule in the doc
    // comment above.
    let mut warnings = Vec::new();
    for (section, keys) in ADDITIVE_SECTIONS {
        match (base.get(section), cur.get(section)) {
            (Some(bs), Some(cs)) => {
                for key in *keys {
                    let (Some(b), Some(c)) = (
                        bs.get(key).and_then(JsonValue::as_f64),
                        cs.get(key).and_then(JsonValue::as_f64),
                    ) else {
                        continue;
                    };
                    let d = drift_pct(b, c);
                    if d > tolerance_pct {
                        violations.push(format!(
                            "{section} {key} drifted {d:.1}% ({b:.0} -> {c:.0}), \
                             tolerance {tolerance_pct}%"
                        ));
                    }
                }
            }
            (Some(_), None) => warnings.push(format!(
                "{section}: present in baseline but not in current run — section not gated \
                 (expected when the run type doesn't produce it)"
            )),
            (None, Some(_)) => violations.push(format!(
                "{section}: new in current run, absent from baseline (refresh the baseline \
                 so the section is gated)"
            )),
            (None, None) => {}
        }
    }

    // Wall-clock throughput floors. Unlike the virtual-time gates above,
    // these are machine-dependent, so the baseline carries explicit floor
    // values (chosen with headroom for runner jitter) and the check is
    // one-sided: the current run may be arbitrarily faster, never slower
    // than the floor.
    if let Some(floor) = base.get("throughput_floor") {
        for key in ["events_per_sec", "ops_per_sec"] {
            let Some(min) = floor.get(key).and_then(JsonValue::as_f64) else {
                continue;
            };
            match cur
                .get("wall")
                .and_then(|w| w.get(key))
                .and_then(JsonValue::as_f64)
            {
                None => violations.push(format!(
                    "throughput floor: baseline requires {key} >= {min:.0} but the \
                     current report has no wall.{key}"
                )),
                Some(got) if got < min => violations.push(format!(
                    "throughput floor: {key} {got:.0} below the baseline floor {min:.0}"
                )),
                Some(_) => {}
            }
        }
    }
    Ok((violations, warnings))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report(p99_scale: f64, bw: f64) -> String {
        format!(
            r#"{{
              "schema": "{METRICS_SCHEMA}",
              "bandwidth_gbs": {bw},
              "phases": [
                {{"phase": "Eager", "p99_ns": {}}},
                {{"phase": "RndvRead", "p99_ns": {}}}
              ]
            }}"#,
            4000.0 * p99_scale,
            90000.0 * p99_scale
        )
    }

    #[test]
    fn identical_reports_pass() {
        let r = fake_report(1.0, 1.5);
        assert_eq!(compare_reports(&r, &r, 0.0).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn drift_within_tolerance_passes() {
        let v = compare_reports(&fake_report(1.0, 1.5), &fake_report(1.1, 1.4), 25.0).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn doubled_p99_fails() {
        let v = compare_reports(&fake_report(2.0, 1.5), &fake_report(1.0, 1.5), 25.0).unwrap();
        assert_eq!(v.len(), 2, "{v:?}"); // both phases drifted 50%
        assert!(v[0].contains("p99 drifted"), "{v:?}");
    }

    #[test]
    fn bandwidth_regression_fails() {
        let v = compare_reports(&fake_report(1.0, 2.0), &fake_report(1.0, 1.0), 25.0).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("bandwidth_gbs"), "{v:?}");
    }

    #[test]
    fn missing_and_new_phases_flagged() {
        let base = format!(
            r#"{{"schema":"{METRICS_SCHEMA}","bandwidth_gbs":1.0,
                "phases":[{{"phase":"Eager","p99_ns":100}}]}}"#
        );
        let cur = format!(
            r#"{{"schema":"{METRICS_SCHEMA}","bandwidth_gbs":1.0,
                "phases":[{{"phase":"RndvWrite","p99_ns":100}}]}}"#
        );
        let v = compare_reports(&base, &cur, 25.0).unwrap();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("missing from current")));
        assert!(v.iter().any(|m| m.contains("absent from baseline")));
    }

    #[test]
    fn missing_phase_alone_fails_even_when_shared_metrics_match() {
        // The dropped phase must be a violation in its own right, not
        // something that only surfaces via drift on surviving phases.
        let base = format!(
            r#"{{"schema":"{METRICS_SCHEMA}","bandwidth_gbs":1.0,
                "phases":[{{"phase":"Eager","p99_ns":100}},
                          {{"phase":"RndvRead","p99_ns":200}}]}}"#
        );
        let cur = format!(
            r#"{{"schema":"{METRICS_SCHEMA}","bandwidth_gbs":1.0,
                "phases":[{{"phase":"Eager","p99_ns":100}}]}}"#
        );
        let v = compare_reports(&base, &cur, 25.0).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("RndvRead"), "{v:?}");
        assert!(v[0].contains("missing from current"), "{v:?}");
    }

    fn report_with_wall(events_per_sec: f64) -> String {
        format!(
            r#"{{"schema":"{METRICS_SCHEMA}","bandwidth_gbs":1.0,
                "wall":{{"wall_ns":1000,"sim_events":10,"mpi_ops":4,
                         "events_per_sec":{events_per_sec},"ops_per_sec":1.0}},
                "phases":[{{"phase":"Eager","p99_ns":100}}]}}"#
        )
    }

    fn baseline_with_floor(floor: f64) -> String {
        format!(
            r#"{{"schema":"{METRICS_SCHEMA}","bandwidth_gbs":1.0,
                "throughput_floor":{{"events_per_sec":{floor}}},
                "phases":[{{"phase":"Eager","p99_ns":100}}]}}"#
        )
    }

    #[test]
    fn throughput_floor_is_one_sided() {
        // Below the floor: violation.
        let v = compare_reports(
            &baseline_with_floor(5000.0),
            &report_with_wall(4000.0),
            25.0,
        )
        .unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("below the baseline floor"), "{v:?}");
        // At or above the floor — even far above: no violation.
        for fast in [5000.0, 500_000.0] {
            let v = compare_reports(&baseline_with_floor(5000.0), &report_with_wall(fast), 25.0)
                .unwrap();
            assert!(v.is_empty(), "{v:?}");
        }
    }

    #[test]
    fn throughput_floor_requires_wall_section() {
        // A baseline that demands a floor fails a candidate without wall
        // metrics (it cannot prove its throughput).
        let cur = format!(
            r#"{{"schema":"{METRICS_SCHEMA}","bandwidth_gbs":1.0,
                "phases":[{{"phase":"Eager","p99_ns":100}}]}}"#
        );
        let v = compare_reports(&baseline_with_floor(5000.0), &cur, 25.0).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("no wall.events_per_sec"), "{v:?}");
        // No floor in the baseline: wall-less candidates stay compatible.
        let base = format!(
            r#"{{"schema":"{METRICS_SCHEMA}","bandwidth_gbs":1.0,
                "phases":[{{"phase":"Eager","p99_ns":100}}]}}"#
        );
        assert!(compare_reports(&base, &cur, 25.0).unwrap().is_empty());
    }

    fn report_with_failures(detections: u64, latency_p99: u64) -> String {
        format!(
            r#"{{"schema":"{METRICS_SCHEMA}","bandwidth_gbs":1.0,
                "failures":{{"kills":4,"detections":{detections},
                             "detection_latency_p99_ns":{latency_p99},
                             "revokes":60,"shrinks":1,"reclaimed":71}},
                "phases":[{{"phase":"Eager","p99_ns":100}}]}}"#
        )
    }

    #[test]
    fn failure_counters_gate_when_present_on_both_sides() {
        // Identical failure planes pass even at zero tolerance.
        let r = report_with_failures(4, 7000);
        assert!(compare_reports(&r, &r, 0.0).unwrap().is_empty());
        // A missed detection (4 -> 3 = 25% drift) and a doubled detection
        // latency both violate.
        let v = compare_reports(
            &report_with_failures(4, 7000),
            &report_with_failures(3, 14000),
            20.0,
        )
        .unwrap();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("failures detections")), "{v:?}");
        assert!(
            v.iter()
                .any(|m| m.contains("failures detection_latency_p99_ns")),
            "{v:?}"
        );
    }

    fn report_without_sections() -> String {
        format!(
            r#"{{"schema":"{METRICS_SCHEMA}","bandwidth_gbs":1.0,
                "phases":[{{"phase":"Eager","p99_ns":100}}]}}"#
        )
    }

    fn report_with_section(section: &str, body: &str) -> String {
        format!(
            r#"{{"schema":"{METRICS_SCHEMA}","bandwidth_gbs":1.0,
                "{section}":{{{body}}},
                "phases":[{{"phase":"Eager","p99_ns":100}}]}}"#
        )
    }

    #[test]
    fn additive_section_only_in_baseline_warns_but_passes() {
        // An old baseline (with the section) against a run type that does
        // not produce it: the gate cannot bind, which is legitimate —
        // warn, don't fail. One direction test per additive section.
        for (section, body) in [
            ("scale", r#""established_pairs":6,"bytes_per_rank":1000"#),
            ("failures", r#""kills":4,"detections":4"#),
            (
                "critical_path",
                r#""total_ns":5000,"edges":12,"wire_ns":3000"#,
            ),
        ] {
            let with = report_with_section(section, body);
            let without = report_without_sections();
            let (v, w) = compare_reports_full(&with, &without, 0.0).unwrap();
            assert!(v.is_empty(), "{section}: {v:?}");
            assert_eq!(w.len(), 1, "{section}: {w:?}");
            assert!(w[0].contains(section), "{w:?}");
            assert!(w[0].contains("not gated"), "{w:?}");
            // The violations-only wrapper keeps passing.
            assert!(compare_reports(&with, &without, 0.0).unwrap().is_empty());
        }
    }

    #[test]
    fn additive_section_only_in_candidate_is_a_violation() {
        // The code grew a section the baseline has never seen: skipping
        // silently would leave it ungated forever, so this direction
        // demands a baseline refresh. One direction test per section.
        for (section, body) in [
            ("scale", r#""established_pairs":6,"bytes_per_rank":1000"#),
            ("failures", r#""kills":4,"detections":4"#),
            (
                "critical_path",
                r#""total_ns":5000,"edges":12,"wire_ns":3000"#,
            ),
        ] {
            let with = report_with_section(section, body);
            let without = report_without_sections();
            let (v, w) = compare_reports_full(&without, &with, 0.0).unwrap();
            assert_eq!(v.len(), 1, "{section}: {v:?}");
            assert!(v[0].contains(section), "{v:?}");
            assert!(v[0].contains("refresh the baseline"), "{v:?}");
            assert!(w.is_empty(), "{section}: {w:?}");
        }
    }

    #[test]
    fn critical_path_drift_gates_when_present_on_both_sides() {
        let base = report_with_section(
            "critical_path",
            r#""total_ns":10000,"edges":20,"wire_ns":6000,"stash_dwell_ns":1000"#,
        );
        assert!(compare_reports(&base, &base, 0.0).unwrap().is_empty());
        let cur = report_with_section(
            "critical_path",
            r#""total_ns":15000,"edges":20,"wire_ns":6000,"stash_dwell_ns":1000"#,
        );
        let v = compare_reports(&base, &cur, 25.0).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].contains("critical_path total_ns drifted 50.0%"),
            "{v:?}"
        );
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let bad = r#"{"schema":"dcfa-mpi-metrics/0","bandwidth_gbs":1.0,"phases":[]}"#;
        assert!(compare_reports(bad, bad, 25.0).is_err());
        assert!(compare_reports("{", "{}", 25.0).is_err());
        assert!(compare_reports("{}", "{}", 25.0).is_err());
    }
}
