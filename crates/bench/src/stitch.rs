//! Post-run message stitcher: joins the per-rank lifecycle streams of a
//! traced run ([`dcfa_mpi::TraceEvent::MsgLife`]) into per-message causal
//! timelines in virtual time, extracts the soak's critical path with a
//! per-edge-kind breakdown, and exports the run as Chrome/Perfetto
//! trace-event JSON (`repro --trace-out`).
//!
//! # Determinism
//!
//! The trace ring appends in simulation execution order, which the DES
//! keeps identical across shard counts (the PR 7 gate), so everything
//! here — timeline order, critical-path choice, flow-id assignment —
//! is a pure function of that stream and is bit-for-bit reproducible.
//!
//! # Fail-soft on drops
//!
//! A saturated trace ring drops its oldest events. The stitcher never
//! panics on the resulting truncated timelines: messages missing their
//! `post` are marked incomplete, a warning is surfaced, and the DAG
//! degrades to the suffix the ring retained.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use dcfa_mpi::{MsgStage, TraceEvent};

use crate::json::{self, JsonValue};

/// Message identity: `(source rank, destination rank, pair sequence id)`.
/// Stable across every protocol path — see the MsgId note on
/// `PacketHeader::seq` in the core crate.
pub type MsgId = (usize, usize, u64);

/// One lifecycle event of one message, as observed by rank `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifeEvent {
    /// Rank whose engine recorded the event.
    pub at: usize,
    /// The stage that *ends* at this timestamp.
    pub stage: MsgStage,
    /// Virtual time, nanoseconds.
    pub t: u64,
}

/// Causal-edge kinds, in the fixed order the `critical_path` report
/// section and the per-message breakdowns use.
pub const EDGE_KINDS: [&str; 7] = [
    "wire",
    "stash_dwell",
    "credit_stall",
    "daemon",
    "rdma",
    "host_copy",
    "local",
];

/// Classify the causal edge ending at `cur`, given the stage of the
/// previous event of the *same message* (`None` when the predecessor is
/// another message on the same rank — pure scheduling, hence `local`).
///
/// Edges are named by where the time went: a `wire` edge that follows an
/// SRQ reorder-stash park is stash dwell, not wire time, and a `match`
/// that drains the unexpected queue measures how long the packet sat
/// there — both reclassify to `stash_dwell`.
pub fn classify(prev: Option<MsgStage>, cur: MsgStage) -> &'static str {
    match cur {
        MsgStage::Wire if prev == Some(MsgStage::SrqStash) => "stash_dwell",
        MsgStage::Match if prev == Some(MsgStage::UnexpStash) => "stash_dwell",
        MsgStage::CreditStall => "credit_stall",
        MsgStage::Copy | MsgStage::OffloadSync => "host_copy",
        MsgStage::MrAcquire | MsgStage::RdmaStart => "daemon",
        MsgStage::RdmaDone => "rdma",
        MsgStage::Wire => "wire",
        _ => "local",
    }
}

/// All lifecycle events of one message, in stream (= causal) order.
#[derive(Debug, Clone)]
pub struct MsgTimeline {
    pub id: MsgId,
    /// Payload length (max over the message's events; 0 if never seen).
    pub len: u64,
    pub events: Vec<LifeEvent>,
    /// The timeline starts at `post` and reaches at least one
    /// `complete` — its end-to-end time is fully accounted for.
    pub complete: bool,
}

impl MsgTimeline {
    /// Virtual time of the first observed event.
    pub fn start(&self) -> u64 {
        self.events.first().map_or(0, |e| e.t)
    }

    /// Virtual time the message completed: the last `complete` event
    /// (late duplicate-delivery events past it are protocol noise, not
    /// message lifetime). Falls back to the last event when the message
    /// never completed.
    pub fn end(&self) -> u64 {
        self.events
            .iter()
            .rev()
            .find(|e| e.stage == MsgStage::Complete)
            .map_or_else(|| self.events.last().map_or(0, |e| e.t), |e| e.t)
    }

    /// Fraction of the end-to-end virtual time `[start, end]` accounted
    /// for by the stitched causal edges. `None` for incomplete
    /// timelines. Consecutive edges telescope, so an untruncated
    /// timeline always covers 1.0 exactly; a ring drop that ate the
    /// head shows up as a sub-1.0 value.
    pub fn coverage(&self) -> Option<f64> {
        if !self.complete {
            return None;
        }
        let (start, end) = (self.start(), self.end());
        if end <= start {
            return Some(1.0);
        }
        let covered: u64 = self
            .events
            .windows(2)
            .filter(|w| w[1].t <= end)
            .map(|w| w[1].t - w[0].t)
            .sum();
        Some(covered as f64 / (end - start) as f64)
    }

    /// Per-edge-kind time breakdown of the timeline (EDGE_KINDS order,
    /// zero entries included). Only edges up to the completion point
    /// count, mirroring [`Self::coverage`].
    pub fn breakdown(&self) -> Vec<(&'static str, u64)> {
        let end = self.end();
        let mut acc: BTreeMap<&'static str, u64> = BTreeMap::new();
        for w in self.events.windows(2) {
            if w[1].t > end {
                break;
            }
            *acc.entry(classify(Some(w[0].stage), w[1].stage))
                .or_insert(0) += w[1].t - w[0].t;
        }
        EDGE_KINDS
            .iter()
            .map(|&k| (k, acc.get(k).copied().unwrap_or(0)))
            .collect()
    }
}

/// The stitched run: every message's timeline plus the drop diagnosis.
#[derive(Debug, Clone)]
pub struct Stitch {
    /// Timelines keyed and sorted by [`MsgId`].
    pub messages: Vec<MsgTimeline>,
    /// Events the trace ring discarded before the stream was captured.
    pub dropped: u64,
    /// Soft-failure diagnostics (non-empty iff the DAG is partial).
    pub warnings: Vec<String>,
}

/// Join a recorded event stream into per-message timelines. `dropped`
/// is the ring's drop counter ([`dcfa_mpi::TraceBuf::dropped`]); a
/// non-zero value downgrades the result to a partial DAG with a warning
/// instead of failing.
pub fn stitch(events: &[TraceEvent], dropped: u64) -> Stitch {
    let mut map: BTreeMap<MsgId, MsgTimeline> = BTreeMap::new();
    for ev in events {
        if let TraceEvent::MsgLife {
            at,
            src,
            dst,
            seq,
            stage,
            t,
            len,
        } = *ev
        {
            let m = map.entry((src, dst, seq)).or_insert_with(|| MsgTimeline {
                id: (src, dst, seq),
                len: 0,
                events: Vec::new(),
                complete: false,
            });
            m.len = m.len.max(len);
            m.events.push(LifeEvent { at, stage, t });
        }
    }
    let mut warnings = Vec::new();
    if dropped > 0 {
        warnings.push(format!(
            "trace ring dropped {dropped} events: the stitched DAG covers \
             only a suffix of the run (raise MpiConfig::trace_capacity)"
        ));
    }
    let mut headless = 0usize;
    let mut messages: Vec<MsgTimeline> = map.into_values().collect();
    for m in &mut messages {
        let has_post = m.events.first().is_some_and(|e| e.stage == MsgStage::Post);
        let has_complete = m.events.iter().any(|e| e.stage == MsgStage::Complete);
        m.complete = has_post && has_complete;
        if !has_post {
            headless += 1;
        }
    }
    if headless > 0 && dropped > 0 {
        warnings.push(format!(
            "{headless} timeline(s) lost their post event to the ring and \
             are stitched head-truncated"
        ));
    }
    Stitch {
        messages,
        dropped,
        warnings,
    }
}

/// The soak's critical path: the heaviest causal chain ending at the
/// last lifecycle event of the run, with its time split by edge kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Virtual-time span of the chain, nanoseconds. Always equals the
    /// sum of the breakdown (the chain's edges telescope).
    pub total_ns: u64,
    /// Causal edges on the chain.
    pub edges: u64,
    /// Per-edge-kind time, in [`EDGE_KINDS`] order (zeros included).
    pub breakdown: Vec<(&'static str, u64)>,
}

impl CriticalPath {
    /// Nanoseconds attributed to `kind` (0 for unknown kinds).
    pub fn kind_ns(&self, kind: &str) -> u64 {
        self.breakdown
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, v)| *v)
    }
}

/// Extract the run's critical path from a recorded event stream, or
/// `None` when it carries no lifecycle events.
///
/// The walk starts at the latest lifecycle event and repeatedly steps to
/// the *later* of (previous event of the same message, previous event on
/// the same rank) — the two happened-before predecessors the engine
/// guarantees — preferring the same-message edge on a timestamp tie.
/// Every step is resolved purely from stream order, so the result is
/// deterministic and shard-invariant.
pub fn critical_path(events: &[TraceEvent]) -> Option<CriticalPath> {
    struct Node {
        id: MsgId,
        stage: MsgStage,
        t: u64,
        prev_msg: Option<usize>,
        prev_rank: Option<usize>,
    }
    let mut nodes: Vec<Node> = Vec::new();
    let mut last_msg: BTreeMap<MsgId, usize> = BTreeMap::new();
    let mut last_rank: BTreeMap<usize, usize> = BTreeMap::new();
    for ev in events {
        if let TraceEvent::MsgLife {
            at,
            src,
            dst,
            seq,
            stage,
            t,
            ..
        } = *ev
        {
            let id = (src, dst, seq);
            let idx = nodes.len();
            nodes.push(Node {
                id,
                stage,
                t,
                prev_msg: last_msg.get(&id).copied(),
                prev_rank: last_rank.get(&at).copied(),
            });
            last_msg.insert(id, idx);
            last_rank.insert(at, idx);
        }
    }
    if nodes.is_empty() {
        return None;
    }
    // Start at the latest event; on a timestamp tie, the last in stream
    // order (deterministic — the stream is shard-invariant).
    let mut cur = nodes
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.t.cmp(&b.t).then(ia.cmp(ib)))
        .map(|(i, _)| i)
        .expect("nodes is non-empty");
    let end_t = nodes[cur].t;
    let mut acc: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut edges = 0u64;
    loop {
        let n = &nodes[cur];
        let pred = match (n.prev_msg, n.prev_rank) {
            (None, None) => break,
            (Some(a), None) => a,
            (None, Some(b)) => b,
            // Same-message wins ties: the protocol edge explains the
            // wait better than generic same-rank scheduling.
            (Some(a), Some(b)) => {
                if nodes[b].t > nodes[a].t {
                    b
                } else {
                    a
                }
            }
        };
        let kind = if nodes[pred].id == n.id {
            classify(Some(nodes[pred].stage), n.stage)
        } else {
            "local"
        };
        *acc.entry(kind).or_insert(0) += n.t - nodes[pred].t;
        edges += 1;
        cur = pred;
    }
    Some(CriticalPath {
        total_ns: end_t - nodes[cur].t,
        edges,
        breakdown: EDGE_KINDS
            .iter()
            .map(|&k| (k, acc.get(k).copied().unwrap_or(0)))
            .collect(),
    })
}

// ---- Perfetto export -------------------------------------------------------

/// Serialize a recorded run as Chrome/Perfetto trace-event JSON: one
/// track (pid) per rank, an `X` duration slice per causal edge (named by
/// its ending stage, categorized by edge kind), and an `s`/`f` flow pair
/// per cross-rank edge. Timestamps are virtual microseconds
/// (`MsgLife::t / 1000`). Load the file at <https://ui.perfetto.dev> or
/// `chrome://tracing`.
pub fn trace_json(events: &[TraceEvent]) -> String {
    let st = stitch(events, 0);
    // (sort ns, emission order, serialized record): sorted output keeps
    // every track's timestamps monotone, the emission counter keeps ties
    // deterministic.
    let mut recs: Vec<(u64, usize, String)> = Vec::new();
    let mut ranks: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    let mut flow_id = 0u64;
    let push = |recs: &mut Vec<(u64, usize, String)>, t: u64, body: String| {
        let ord = recs.len();
        recs.push((t, ord, body));
    };
    for m in &st.messages {
        let label = format!("{}->{} seq {}", m.id.0, m.id.1, m.id.2);
        if let Some(first) = m.events.first() {
            ranks.insert(first.at);
            push(
                &mut recs,
                first.t,
                slice(first.at, first.t, 0, first.stage.name(), "local", &label),
            );
        }
        for w in m.events.windows(2) {
            let (a, b) = (w[0], w[1]);
            ranks.insert(b.at);
            let kind = classify(Some(a.stage), b.stage);
            if a.at == b.at {
                push(
                    &mut recs,
                    a.t,
                    slice(a.at, a.t, b.t - a.t, b.stage.name(), kind, &label),
                );
            } else {
                // Cross-rank: a zero-width arrival slice plus the flow
                // arrow connecting the two tracks.
                push(
                    &mut recs,
                    b.t,
                    slice(b.at, b.t, 0, b.stage.name(), kind, &label),
                );
                push(&mut recs, a.t, flow(a.at, a.t, flow_id, "s", &label));
                push(&mut recs, b.t, flow(b.at, b.t, flow_id, "f", &label));
                flow_id += 1;
            }
        }
    }
    recs.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.cmp(&y.1)));
    let mut out = String::with_capacity(64 + recs.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    for r in &ranks {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{r},\"tid\":0,\
             \"args\":{{\"name\":\"rank {r}\"}}}}"
        );
    }
    for (_, _, body) in &recs {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(body);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

fn ts_us(out: &mut String, t_ns: u64) {
    // Microseconds with nanosecond resolution preserved as a fraction.
    json::write_num(out, t_ns as f64 / 1000.0);
}

fn slice(pid: usize, t: u64, dur: u64, name: &str, cat: &str, msg: &str) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",");
    let _ = write!(s, "\"pid\":{pid},\"tid\":0,\"ts\":");
    ts_us(&mut s, t);
    s.push_str(",\"dur\":");
    ts_us(&mut s, dur);
    let _ = write!(s, ",\"args\":{{\"msg\":");
    json::write_str(&mut s, msg);
    s.push_str("}}");
    s
}

fn flow(pid: usize, t: u64, id: u64, ph: &str, msg: &str) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"{ph}\",");
    let _ = write!(s, "\"id\":{id},\"pid\":{pid},\"tid\":0,\"ts\":");
    ts_us(&mut s, t);
    if ph == "f" {
        s.push_str(",\"bp\":\"e\"");
    }
    let _ = write!(s, ",\"args\":{{\"msg\":");
    json::write_str(&mut s, msg);
    s.push_str("}}");
    s
}

/// Summary counts of a validated trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceJsonStats {
    /// Entries in `traceEvents` (metadata included).
    pub events: usize,
    /// `X` duration slices.
    pub slices: usize,
    /// Matched `s`/`f` flow pairs.
    pub flows: usize,
    /// Distinct `(pid, tid)` tracks.
    pub tracks: usize,
}

/// Validate trace-event JSON against the subset of the Chrome schema the
/// exporter emits: well-formed document, every record carries the
/// required fields for its phase, every flow id has exactly one `s` and
/// one `f` (with `f` not before `s`), and per-track timestamps are
/// monotone non-decreasing. This is the CI gate behind `--trace-out`.
pub fn validate_trace_json(text: &str) -> Result<TraceJsonStats, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("no traceEvents array")?;
    let mut slices = 0usize;
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut flows: BTreeMap<u64, (u64, u64, f64, f64)> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: no ph"))?;
        let num = |key: &str| -> Result<f64, String> {
            ev.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("event {i} (ph {ph}): no numeric {key}"))
        };
        if ev.get("name").and_then(JsonValue::as_str).is_none() {
            return Err(format!("event {i}: no name"));
        }
        if ph == "M" {
            num("pid")?;
            continue;
        }
        let (pid, tid, ts) = (num("pid")? as u64, num("tid")? as u64, num("ts")?);
        if let Some(&prev) = last_ts.get(&(pid, tid)) {
            if ts < prev {
                return Err(format!(
                    "event {i}: track ({pid},{tid}) ts went backwards ({prev} -> {ts})"
                ));
            }
        }
        last_ts.insert((pid, tid), ts);
        match ph {
            "X" => {
                if num("dur")? < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
                slices += 1;
            }
            "s" | "f" => {
                let id = num("id")? as u64;
                let e = flows.entry(id).or_insert((0, 0, 0.0, 0.0));
                if ph == "s" {
                    e.0 += 1;
                    e.2 = ts;
                } else {
                    e.1 += 1;
                    e.3 = ts;
                }
            }
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    for (id, (s, f, s_ts, f_ts)) in &flows {
        if *s != 1 || *f != 1 {
            return Err(format!(
                "flow {id}: {s} start(s), {f} finish(es) (must pair 1:1)"
            ));
        }
        if f_ts < s_ts {
            return Err(format!(
                "flow {id}: finish at {f_ts} before start at {s_ts}"
            ));
        }
    }
    Ok(TraceJsonStats {
        events: events.len(),
        slices,
        flows: flows.len(),
        tracks: last_ts.len(),
    })
}

// ---- explain-msg -----------------------------------------------------------

/// Render every message with source rank `src` and pair sequence `seq`
/// as a human-readable cross-rank timeline (`repro --explain-msg`).
/// Returns a "no such message" note when the trace has none.
pub fn explain_msg(events: &[TraceEvent], src: usize, seq: u64) -> String {
    let st = stitch(events, 0);
    let matches: Vec<&MsgTimeline> = st
        .messages
        .iter()
        .filter(|m| m.id.0 == src && m.id.2 == seq)
        .collect();
    if matches.is_empty() {
        return format!("no lifecycle events for a message from rank {src} with seq {seq}\n");
    }
    let mut out = String::new();
    for m in &matches {
        let span = m.end().saturating_sub(m.start());
        let _ = writeln!(
            out,
            "message {} -> {} seq {} ({} B): {} events, {}, {:.3} us end-to-end",
            m.id.0,
            m.id.1,
            m.id.2,
            m.len,
            m.events.len(),
            if m.complete { "complete" } else { "INCOMPLETE" },
            span as f64 / 1e3
        );
        let mut prev: Option<LifeEvent> = None;
        for e in &m.events {
            match prev {
                None => {
                    let _ = writeln!(out, "  t={:<12} rank {:<4} {}", e.t, e.at, e.stage.name());
                }
                Some(p) => {
                    let _ = writeln!(
                        out,
                        "  +{:<11} rank {:<4} {:<12} [{}]",
                        e.t - p.t,
                        e.at,
                        e.stage.name(),
                        classify(Some(p.stage), e.stage)
                    );
                }
            }
            prev = Some(*e);
        }
        if m.complete {
            let _ = writeln!(out, "  breakdown:");
            for (k, v) in m.breakdown() {
                if v > 0 {
                    let _ = writeln!(out, "    {k:<13} {:>10.3} us", v as f64 / 1e3);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn life(at: usize, src: usize, dst: usize, seq: u64, stage: MsgStage, t: u64) -> TraceEvent {
        TraceEvent::MsgLife {
            at,
            src,
            dst,
            seq,
            stage,
            t,
            len: 256,
        }
    }

    fn eager_msg(src: usize, dst: usize, seq: u64, t0: u64) -> Vec<TraceEvent> {
        vec![
            life(src, src, dst, seq, MsgStage::Post, t0),
            life(src, src, dst, seq, MsgStage::Copy, t0 + 100),
            life(src, src, dst, seq, MsgStage::Doorbell, t0 + 150),
            life(dst, src, dst, seq, MsgStage::Wire, t0 + 1150),
            life(dst, src, dst, seq, MsgStage::Match, t0 + 1200),
            life(dst, src, dst, seq, MsgStage::Copy, t0 + 1300),
            life(dst, src, dst, seq, MsgStage::Complete, t0 + 1310),
            life(src, src, dst, seq, MsgStage::Complete, t0 + 1400),
        ]
    }

    #[test]
    fn edge_classification_rules() {
        use MsgStage::*;
        assert_eq!(classify(Some(Doorbell), Wire), "wire");
        assert_eq!(classify(Some(SrqStash), Wire), "stash_dwell");
        assert_eq!(classify(Some(UnexpStash), Match), "stash_dwell");
        assert_eq!(classify(Some(Wire), Match), "local");
        assert_eq!(classify(Some(Post), CreditStall), "credit_stall");
        assert_eq!(classify(Some(Match), Copy), "host_copy");
        assert_eq!(classify(Some(Post), OffloadSync), "host_copy");
        assert_eq!(classify(Some(Post), MrAcquire), "daemon");
        assert_eq!(classify(Some(MrAcquire), RdmaStart), "daemon");
        assert_eq!(classify(Some(RdmaStart), RdmaDone), "rdma");
        assert_eq!(classify(Some(Copy), Complete), "local");
        assert_eq!(classify(None, Wire), "wire");
    }

    #[test]
    fn stitch_builds_complete_timeline_with_full_coverage() {
        let evs = eager_msg(0, 1, 0, 1000);
        let st = stitch(&evs, 0);
        assert!(st.warnings.is_empty());
        assert_eq!(st.messages.len(), 1);
        let m = &st.messages[0];
        assert_eq!(m.id, (0, 1, 0));
        assert!(m.complete);
        assert_eq!(m.start(), 1000);
        assert_eq!(m.end(), 2400); // the *last* complete
        assert_eq!(m.coverage(), Some(1.0));
        let wire: u64 = m
            .breakdown()
            .iter()
            .find(|(k, _)| *k == "wire")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(wire, 1000);
    }

    #[test]
    fn late_duplicate_events_do_not_extend_the_message() {
        let mut evs = eager_msg(0, 1, 0, 0);
        // A retransmitted packet delivers again long after completion.
        evs.push(life(1, 0, 1, 0, MsgStage::Wire, 9000));
        let st = stitch(&evs, 0);
        let m = &st.messages[0];
        assert_eq!(m.end(), 1400, "end caps at the last complete");
        assert_eq!(m.coverage(), Some(1.0));
    }

    #[test]
    fn dropped_events_fail_soft() {
        // The ring ate the head: no post, only the receive side.
        let evs = vec![
            life(1, 0, 1, 7, MsgStage::Wire, 500),
            life(1, 0, 1, 7, MsgStage::Match, 600),
            life(1, 0, 1, 7, MsgStage::Complete, 700),
        ];
        let st = stitch(&evs, 3);
        assert_eq!(st.messages.len(), 1);
        assert!(!st.messages[0].complete, "head-truncated is incomplete");
        assert_eq!(st.messages[0].coverage(), None);
        assert!(st.warnings.iter().any(|w| w.contains("dropped 3 events")));
        assert!(st.warnings.iter().any(|w| w.contains("head-truncated")));
    }

    #[test]
    fn critical_path_telescopes_and_is_deterministic() {
        // Two overlapping messages; the path must end at the global last
        // event and its breakdown must sum to its total.
        let mut evs = eager_msg(0, 1, 0, 0);
        evs.extend(eager_msg(1, 2, 0, 700));
        evs.sort_by_key(|e| match e {
            TraceEvent::MsgLife { t, .. } => *t,
            _ => 0,
        });
        let cp = critical_path(&evs).expect("lifecycle events present");
        assert_eq!(
            cp.total_ns,
            cp.breakdown.iter().map(|(_, v)| v).sum::<u64>(),
            "chain edges telescope"
        );
        assert!(cp.edges > 0);
        assert!(cp.kind_ns("wire") >= 1000, "a wire hop is on the path");
        // Bit-for-bit determinism over the same stream.
        assert_eq!(critical_path(&evs), Some(cp));
    }

    #[test]
    fn critical_path_none_without_lifecycle_events() {
        assert!(critical_path(&[]).is_none());
    }

    #[test]
    fn trace_json_validates_and_pairs_flows() {
        let mut evs = eager_msg(0, 1, 0, 0);
        evs.extend(eager_msg(2, 3, 0, 50));
        let out = trace_json(&evs);
        let stats = validate_trace_json(&out).expect("exporter output is schema-valid");
        // Each eager message has 2 cross-rank edges (wire + the sender's
        // completion) -> 2 flow pairs per message.
        assert_eq!(stats.flows, 4);
        assert_eq!(stats.tracks, 4);
        assert!(stats.slices > 0);
    }

    #[test]
    fn validator_rejects_unpaired_flows_and_backward_ts() {
        let unpaired = r#"{"traceEvents":[
            {"name":"msg","cat":"m","ph":"s","id":1,"pid":0,"tid":0,"ts":1.0}
        ]}"#;
        let e = validate_trace_json(unpaired).unwrap_err();
        assert!(e.contains("must pair 1:1"), "{e}");
        let backward = r#"{"traceEvents":[
            {"name":"a","cat":"m","ph":"X","pid":0,"tid":0,"ts":5.0,"dur":1.0},
            {"name":"b","cat":"m","ph":"X","pid":0,"tid":0,"ts":2.0,"dur":1.0}
        ]}"#;
        let e = validate_trace_json(backward).unwrap_err();
        assert!(e.contains("went backwards"), "{e}");
        assert!(validate_trace_json("{}").is_err());
        assert!(validate_trace_json("not json").is_err());
    }

    #[test]
    fn explain_msg_renders_the_cross_rank_timeline() {
        let evs = eager_msg(3, 5, 12, 100);
        let text = explain_msg(&evs, 3, 12);
        assert!(text.contains("message 3 -> 5 seq 12"), "{text}");
        assert!(text.contains("complete"), "{text}");
        assert!(text.contains("post"), "{text}");
        assert!(text.contains("[wire]"), "{text}");
        assert!(text.contains("breakdown:"), "{text}");
        let miss = explain_msg(&evs, 4, 12);
        assert!(miss.contains("no lifecycle events"), "{miss}");
    }
}
