//! # bench — experiment harness regenerating every table and figure
//!
//! The `repro` binary drives full parameter sweeps and prints the same
//! rows/series the paper reports (see EXPERIMENTS.md for paper-vs-measured
//! records). Criterion benches under `benches/` measure harness hot paths
//! and provide per-figure regression anchors.

use apps::{
    commonly_dcfa, commonly_offload, mpi_pingpong_blocking, mpi_pingpong_nonblocking,
    rdma_direction, stencil_dcfa, stencil_intel_phi, stencil_offload, Direction, MpiRuntime,
    StencilParams,
};
use dcfa_mpi::MpiConfig;
use fabric::ClusterConfig;
use serde::Serialize;

pub mod json;
pub mod report;
pub mod stitch;

pub use report::{compare_reports, compare_reports_full, metrics_report_json, METRICS_SCHEMA};

/// Message-size sweep used by the bandwidth/RTT figures (4 B – 2^max_pow,
/// powers of two).
pub fn size_sweep(max_pow: u32) -> Vec<u64> {
    (2..=max_pow).map(|p| 1u64 << p).collect()
}

/// Iteration counts scaled down as messages grow (keeps sweeps quick while
/// staying deterministic).
pub fn iters_for(size: u64) -> u32 {
    match size {
        0..=4096 => 30,
        4097..=262_144 => 12,
        _ => 6,
    }
}

/// A labelled series of (size, value) points.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    pub label: String,
    pub points: Vec<(u64, f64)>,
}

/// Fig. 5: RDMA-write bandwidth by direction.
pub fn fig5(ccfg: &ClusterConfig, max_pow: u32) -> Vec<Series> {
    Direction::ALL
        .iter()
        .map(|&dir| Series {
            label: dir.label().to_string(),
            points: size_sweep(max_pow)
                .into_iter()
                .map(|s| (s, rdma_direction(ccfg, dir, s, iters_for(s)).bw_gbs))
                .collect(),
        })
        .collect()
}

/// Figs. 7 and 8: non-blocking RTT (us) and bandwidth (GB/s) for DCFA-MPI
/// with/without the offloading send buffer vs. host MPI.
pub fn fig7_fig8(ccfg: &ClusterConfig, max_pow: u32) -> (Vec<Series>, Vec<Series>) {
    let runtimes = [
        (
            "DCFA-MPI (offload send buffer)",
            MpiRuntime::Dcfa(MpiConfig::dcfa()),
        ),
        (
            "DCFA-MPI (no offload)",
            MpiRuntime::Dcfa(MpiConfig::dcfa_no_offload()),
        ),
        ("host MPI (YAMPII)", MpiRuntime::Dcfa(MpiConfig::host())),
    ];
    let mut rtt = Vec::new();
    let mut bw = Vec::new();
    for (label, rt) in runtimes {
        let mut rtt_pts = Vec::new();
        let mut bw_pts = Vec::new();
        for s in size_sweep(max_pow) {
            let r = mpi_pingpong_nonblocking(ccfg, &rt, s, iters_for(s));
            rtt_pts.push((s, r.rtt_us));
            bw_pts.push((s, r.bw_gbs));
        }
        rtt.push(Series {
            label: label.to_string(),
            points: rtt_pts,
        });
        bw.push(Series {
            label: label.to_string(),
            points: bw_pts,
        });
    }
    (rtt, bw)
}

/// Fig. 9: blocking-ping-pong bandwidth, DCFA-MPI vs Intel-MPI-on-Phi.
pub fn fig9(ccfg: &ClusterConfig, max_pow: u32) -> Vec<Series> {
    let runtimes = [
        ("DCFA-MPI", MpiRuntime::Dcfa(MpiConfig::dcfa())),
        ("Intel MPI on Xeon Phi", MpiRuntime::IntelPhi),
    ];
    runtimes
        .iter()
        .map(|(label, rt)| Series {
            label: label.to_string(),
            points: size_sweep(max_pow)
                .into_iter()
                .map(|s| (s, mpi_pingpong_blocking(ccfg, rt, s, iters_for(s)).bw_gbs))
                .collect(),
        })
        .collect()
}

/// Fig. 9 inset: the 4-byte blocking round trips the paper quotes
/// (15 us vs 28 us). Returns `(dcfa_us, intel_us)`.
pub fn fig9_small_rtt(ccfg: &ClusterConfig) -> (f64, f64) {
    let d = mpi_pingpong_blocking(ccfg, &MpiRuntime::Dcfa(MpiConfig::dcfa()), 4, 30);
    let i = mpi_pingpong_blocking(ccfg, &MpiRuntime::IntelPhi, 4, 30);
    (d.rtt_us, i.rtt_us)
}

/// Fig. 10: communication-only app, per-iteration time for DCFA-MPI vs
/// Xeon+offload.
pub fn fig10(ccfg: &ClusterConfig, max_pow: u32) -> Vec<Series> {
    let sizes = size_sweep(max_pow);
    let dcfa = Series {
        label: "DCFA-MPI".into(),
        points: sizes
            .iter()
            .map(|&s| {
                (
                    s,
                    commonly_dcfa(ccfg, MpiConfig::dcfa(), s, iters_for(s)).iter_us,
                )
            })
            .collect(),
    };
    let off = Series {
        label: "Intel MPI on Xeon + offload".into(),
        points: sizes
            .iter()
            .map(|&s| (s, commonly_offload(ccfg, s, iters_for(s)).iter_us))
            .collect(),
    };
    vec![dcfa, off]
}

/// One Fig. 11/12 grid cell.
#[derive(Debug, Clone, Serialize)]
pub struct StencilCell {
    pub runtime: &'static str,
    pub procs: usize,
    pub threads: u32,
    pub iter_us: f64,
    pub speedup_vs_serial: f64,
}

/// Figs. 11 and 12: the stencil grid over (runtime, procs, threads),
/// with speed-ups normalized to the 1-proc/1-thread serial run.
pub fn fig11_fig12(
    ccfg: &ClusterConfig,
    n: usize,
    iters: u32,
    procs_list: &[usize],
    threads_list: &[u32],
) -> (f64, Vec<StencilCell>) {
    let serial = stencil_dcfa(
        ccfg,
        MpiConfig::dcfa(),
        StencilParams {
            n,
            iters,
            procs: 1,
            threads: 1,
        },
    );
    let mut cells = Vec::new();
    for &procs in procs_list {
        for &threads in threads_list {
            let p = StencilParams {
                n,
                iters,
                procs,
                threads,
            };
            for (runtime, r) in [
                ("DCFA-MPI", stencil_dcfa(ccfg, MpiConfig::dcfa(), p)),
                ("Intel MPI on Xeon Phi", stencil_intel_phi(ccfg, p)),
                ("Intel MPI on Xeon + offload", stencil_offload(ccfg, p)),
            ] {
                cells.push(StencilCell {
                    runtime,
                    procs,
                    threads,
                    iter_us: r.iter_us,
                    speedup_vs_serial: serial.iter_us / r.iter_us,
                });
            }
        }
    }
    (serial.iter_us, cells)
}

// ---- ablations (design choices DESIGN.md §6 calls out) ----------------------

/// Offloading-send-buffer threshold sweep at a fixed message size: the
/// paper tuned the activation point and found 8 KiB best in its
/// environment. Returns `(threshold, rtt_us)` — `u64::MAX` means "never
/// offload".
pub fn ablation_offload_threshold(ccfg: &ClusterConfig, msg: u64) -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    for thr in [1u64 << 10, 4 << 10, 8 << 10, 32 << 10, 128 << 10, u64::MAX] {
        let cfg = if thr == u64::MAX {
            MpiConfig::dcfa_no_offload()
        } else {
            MpiConfig {
                offload_threshold: Some(thr),
                ..MpiConfig::dcfa()
            }
        };
        let r = mpi_pingpong_nonblocking(ccfg, &MpiRuntime::Dcfa(cfg), msg, 8);
        out.push((thr, r.rtt_us));
    }
    out
}

/// MR-cache ablation: ping-pong a large (rendezvous) message with the
/// buffer cache pool on vs. off. Returns `(with_us, without_us)`.
///
/// Beyond timing, this asserts the cache actually behaved as configured:
/// with the pool on, repeated sends from the same buffer must hit; with
/// `mr_cache_capacity = 0` there must be no hits and no region may stay
/// resident after the run (the leak this layer's lease model fixed).
pub fn ablation_mr_cache(ccfg: &ClusterConfig, msg: u64) -> (f64, f64) {
    use dcfa_mpi::{Communicator, Src, TagSel};
    use std::sync::Arc;

    fn run(ccfg: &ClusterConfig, msg: u64, cached: bool) -> f64 {
        let cfg = if cached {
            MpiConfig::dcfa_no_offload()
        } else {
            MpiConfig {
                mr_cache_capacity: 0,
                ..MpiConfig::dcfa_no_offload()
            }
        };
        let iters = 8u32;
        let mut sim = simcore::Simulation::new();
        let cluster = fabric::Cluster::new(sim.scheduler(), ccfg.clone());
        let ib = verbs::IbFabric::new(cluster.clone());
        let scif = scif::ScifFabric::new(cluster);
        let out = Arc::new(parking_lot::Mutex::new(0.0f64));
        let out2 = out.clone();
        dcfa_mpi::launch(
            &sim,
            &ib,
            &scif,
            cfg,
            2,
            dcfa_mpi::LaunchOpts::default(),
            move |ctx, comm| {
                let buf = comm.alloc(msg).unwrap();
                let t0 = ctx.now();
                for _ in 0..iters {
                    if comm.rank() == 0 {
                        comm.send(ctx, &buf, 1, 1).unwrap();
                        comm.recv(ctx, &buf, Src::Rank(1), TagSel::Tag(1)).unwrap();
                    } else {
                        comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
                        comm.send(ctx, &buf, 0, 1).unwrap();
                    }
                }
                if comm.rank() == 0 {
                    *out2.lock() = (ctx.now() - t0).as_micros_f64() / f64::from(iters);
                }
                let (hits, misses) = comm.mr_cache_stats();
                if cached {
                    assert!(
                        hits > 0,
                        "cache on: repeated same-buffer sends must hit (hits={hits})"
                    );
                } else {
                    assert_eq!(hits, 0, "cache off: no lookups may hit");
                    assert!(misses > 0, "cache off: every acquire is a miss");
                    assert_eq!(
                        comm.mr_cache_len(),
                        0,
                        "cache off: no region may stay resident (leak)"
                    );
                }
                assert_eq!(comm.mr_pinned_len(), 0, "no lease may outlive its transfer");
            },
        );
        sim.run_expect();
        let v = *out.lock();
        v
    }

    (run(ccfg, msg, true), run(ccfg, msg, false))
}

/// Eager/rendezvous switch-point sweep at a fixed message size.
pub fn ablation_eager_threshold(ccfg: &ClusterConfig, msg: u64) -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    for thr in [1u64 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10] {
        let cfg = MpiConfig {
            eager_threshold: thr,
            ring_slot_payload: thr.max(16 << 10),
            ..MpiConfig::dcfa()
        };
        let r = mpi_pingpong_nonblocking(ccfg, &MpiRuntime::Dcfa(cfg), msg, 8);
        out.push((thr, r.rtt_us));
    }
    out
}

/// Rendezvous-flavour timing study: skew the receiver early (receiver-
/// first RTR path) vs. the sender early (sender-first RTS path) and
/// report per-message time for each. Returns `(recv_first_us,
/// send_first_us)`.
pub fn ablation_rndv_skew(ccfg: &ClusterConfig, msg: u64) -> (f64, f64) {
    use dcfa_mpi::{Communicator, Src, TagSel};
    use std::sync::Arc;

    fn run(ccfg: &ClusterConfig, msg: u64, recv_first: bool) -> f64 {
        let mut sim = simcore::Simulation::new();
        let cluster = fabric::Cluster::new(sim.scheduler(), ccfg.clone());
        let ib = verbs::IbFabric::new(cluster.clone());
        let scif = scif::ScifFabric::new(cluster);
        let out = Arc::new(parking_lot::Mutex::new(0.0f64));
        let out2 = out.clone();
        dcfa_mpi::launch(
            &sim,
            &ib,
            &scif,
            MpiConfig::dcfa_no_offload(),
            2,
            dcfa_mpi::LaunchOpts::default(),
            move |ctx, comm| {
                let buf = comm.alloc(msg).unwrap();
                let skew = simcore::SimDuration::from_micros(200);
                for _ in 0..6 {
                    if comm.rank() == 0 {
                        if recv_first {
                            ctx.sleep(skew);
                        }
                        let t0 = ctx.now();
                        comm.send(ctx, &buf, 1, 1).unwrap();
                        *out2.lock() += (ctx.now() - t0).as_micros_f64() / 6.0;
                    } else {
                        if !recv_first {
                            ctx.sleep(skew);
                        }
                        comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
                    }
                }
            },
        );
        sim.run_expect();
        let v = *out.lock();
        v
    }
    (run(ccfg, msg, true), run(ccfg, msg, false))
}

/// Host-staged-collective ablation (the paper's §VI future work,
/// implemented in `dcfa_mpi::hostcoll`): plain vs host-staged broadcast
/// across 8 ranks. Returns `(plain_us, staged_us)` for `msg` bytes.
pub fn ablation_host_staged_bcast(ccfg: &ClusterConfig, msg: u64) -> (f64, f64) {
    use dcfa_mpi::{collectives, hostcoll};
    use std::sync::Arc;

    let mut sim = simcore::Simulation::new();
    let cluster = fabric::Cluster::new(sim.scheduler(), ccfg.clone());
    let ib = verbs::IbFabric::new(cluster.clone());
    let scif = scif::ScifFabric::new(cluster);
    let out = Arc::new(parking_lot::Mutex::new((0.0f64, 0.0f64)));
    let out2 = out.clone();
    dcfa_mpi::launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        8,
        dcfa_mpi::LaunchOpts::default(),
        move |ctx, comm| {
            use dcfa_mpi::Communicator;
            let buf = comm.alloc(msg).unwrap();
            collectives::barrier(comm, ctx).unwrap();
            let t0 = ctx.now();
            collectives::bcast(comm, ctx, &buf, 0).unwrap();
            collectives::barrier(comm, ctx).unwrap();
            let plain = (ctx.now() - t0).as_micros_f64();
            let t1 = ctx.now();
            hostcoll::bcast_host_staged(comm, ctx, &buf, 0).unwrap();
            collectives::barrier(comm, ctx).unwrap();
            let staged = (ctx.now() - t1).as_micros_f64();
            if comm.rank() == 0 {
                *out2.lock() = (plain, staged);
            }
        },
    );
    sim.run_expect();
    let v = *out.lock();
    v
}

// ---- observability (`repro --stats` / `--trace`) ---------------------------

/// Everything `repro --stats` / `repro --trace` reports: per-rank counter
/// snapshots, daemon + fabric counters, and the audited protocol-event
/// trace of a short mixed-protocol run.
pub struct ObservabilityRun {
    /// Per-rank [`dcfa_mpi::StatsReport`], indexed by rank.
    pub reports: Vec<dcfa_mpi::StatsReport>,
    /// DCFA host-daemon counters (all nodes aggregated).
    pub daemon: Option<dcfa::DcfaCounters>,
    /// Per-node channel utilization.
    pub fabric: Vec<fabric::FabricStats>,
    /// The recorded protocol events, in causal order.
    pub events: Vec<dcfa_mpi::TraceEvent>,
    /// Events dropped by the ring (0 unless the run outgrew the capacity).
    pub dropped: u64,
    /// Protocol-auditor verdict over `events`.
    pub audit: Result<dcfa_mpi::AuditReport, Vec<String>>,
    /// Latency histograms recorded by every rank (see
    /// [`dcfa_mpi::MetricsHub`]); drained by [`metrics_report_json`].
    pub metrics: dcfa_mpi::MetricsHub,
    /// Virtual time the whole simulation took, in nanoseconds.
    pub elapsed_ns: u64,
    /// Wall-clock time the simulation took to execute, in nanoseconds.
    /// Machine-dependent: gated as a floor, never as symmetric drift.
    pub wall_ns: u64,
    /// Scheduler events the run processed (wall-clock throughput is
    /// `sim_events / wall_ns`).
    pub sim_events: u64,
    /// Completed MPI-level send operations across all ranks (eager +
    /// rendezvous), the numerator of `ops_per_sec`.
    pub mpi_ops: u64,
    /// The MPI configuration the ranks ran under (report fingerprint).
    pub cfg: MpiConfig,
    /// Number of ranks launched.
    pub ranks: usize,
    /// Failure-plane counters, present only for runs with the failure
    /// subsystem armed (kill soaks). Serialized as the additive
    /// `failures` section of the metrics report.
    pub failures: Option<FailureSummary>,
}

/// Aggregated failure-plane counters of a run with rank kills armed:
/// ground-truth kills, detections and their latency, and the recovery
/// protocol's progress (revocations, shrink commits, reclaimed objects).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FailureSummary {
    /// Ranks fail-stop killed (ground truth).
    pub kills: u64,
    /// `Dead` promotions on the health board (each corpse once, however
    /// many survivors later reap it locally).
    pub detections: u64,
    /// p99 of the promotion-minus-kill latencies, in virtual ns.
    pub detection_latency_p99_ns: u64,
    /// Revocation floods (`Comm::revoke` epoch bumps).
    pub revokes: u64,
    /// Distinct shrink agreements committed on the board (a clean run
    /// commits exactly one, at the final death epoch; the per-rank
    /// commit count lives in the audit report).
    pub shrinks: u64,
    /// Protocol objects reclaimed from dead peers across all survivors.
    pub reclaimed: u64,
}

/// Audit an event stream and stamp in the trace ring's drop counter, so
/// every report carries the loss diagnosis next to the invariant verdict.
fn audited(
    events: &[dcfa_mpi::TraceEvent],
    dropped: u64,
) -> Result<dcfa_mpi::AuditReport, Vec<String>> {
    dcfa_mpi::audit(events).map(|mut a| {
        a.events_dropped = dropped;
        a
    })
}

/// p99 of a sample set (0 for an empty one): nearest-rank on the sorted
/// samples, the same convention the latency histograms use.
fn p99(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut s = samples.to_vec();
    s.sort_unstable();
    s[(s.len() - 1) * 99 / 100]
}

/// Run the 4-rank mixed workload behind `repro --stats`: eager ring
/// traffic, sender-first and receiver-first rendezvous (forced by skewing
/// the peers), `MPI_ANY_SOURCE` receives and offload-buffer syncs — every
/// protocol path the trace layer instruments — with tracing enabled, then
/// audit the event stream.
pub fn observability_run(ccfg: &ClusterConfig) -> ObservabilityRun {
    use dcfa_mpi::{Communicator, Src, TagSel};
    use std::sync::Arc;

    const N: usize = 4;
    let mut sim = simcore::Simulation::new();
    let cluster = fabric::Cluster::new(sim.scheduler(), ccfg.clone());
    let ib = verbs::IbFabric::new(cluster.clone());
    let scif = scif::ScifFabric::new(cluster.clone());
    let cfg = MpiConfig::dcfa();
    let tracer = dcfa_mpi::TraceBuf::new(cfg.trace_capacity);
    let metrics = dcfa_mpi::MetricsHub::new();
    let reports = Arc::new(parking_lot::Mutex::new(vec![None; N]));
    let reports2 = reports.clone();
    let opts = dcfa_mpi::LaunchOpts {
        tracer: Some(tracer.clone()),
        metrics: Some(metrics.clone()),
        ..Default::default()
    };
    let daemon = dcfa_mpi::launch(&sim, &ib, &scif, cfg.clone(), N, opts, move |ctx, comm| {
        let (r, n) = (comm.rank(), comm.size());
        let next = (r + 1) % n;
        let prev = (r + n - 1) % n;
        let skew = simcore::SimDuration::from_micros(150);
        let stx = comm.alloc(512).unwrap();
        let srx = comm.alloc(512).unwrap();
        let big = comm.alloc(64 << 10).unwrap();
        // Eager ring traffic (and credit-return pressure).
        for _ in 0..8 {
            comm.sendrecv(ctx, &stx, next, &srx, prev, 10).unwrap();
        }
        // Rendezvous between pairs (0<->1, 2<->3), both flavours: first
        // the receiver arrives late (sender-first RTS path), then the
        // sender arrives late (receiver-first RTR path — the iprobe
        // pumps progress so the arrived RTR is stashed before isend
        // decides, exactly like the faults suite does). 64 KiB is past
        // the eager and offload thresholds, so the sends also exercise
        // the offloading send buffer.
        let peer = r ^ 1;
        for recv_late in [true, false] {
            if r % 2 == 0 {
                if !recv_late {
                    ctx.sleep(skew);
                    let _ = comm.iprobe(ctx, Src::Rank(peer), TagSel::Tag(999));
                }
                comm.send(ctx, &big, peer, 20).unwrap();
            } else {
                if recv_late {
                    ctx.sleep(skew);
                }
                comm.recv(ctx, &big, Src::Rank(peer), TagSel::Tag(20))
                    .unwrap();
            }
        }
        // ANY_SOURCE fan-in to rank 0 (sequence-locking path).
        if r == 0 {
            for _ in 1..n {
                comm.recv(ctx, &srx, Src::Any, TagSel::Any).unwrap();
            }
        } else {
            comm.send(ctx, &stx, 0, 30).unwrap();
        }
        reports2.lock()[r] = Some(comm.dump());
    });
    let wall_start = std::time::Instant::now();
    let run_report = sim.run_expect();
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let events = tracer.snapshot();
    let per_rank: Vec<_> = reports
        .lock()
        .iter()
        .map(|r| r.expect("rank finished"))
        .collect();
    let mpi_ops = per_rank
        .iter()
        .map(|r| r.comm.eager_sends + r.comm.rndv_sends)
        .sum();
    ObservabilityRun {
        reports: per_rank,
        daemon: daemon.map(|d| d.snapshot()),
        fabric: (0..cluster.num_nodes())
            .map(|n| cluster.fabric_stats(fabric::NodeId(n)))
            .collect(),
        dropped: tracer.dropped(),
        audit: audited(&events, tracer.dropped()),
        events,
        metrics,
        elapsed_ns: run_report.final_time.0,
        wall_ns,
        sim_events: run_report.events_processed,
        mpi_ops,
        cfg,
        ranks: N,
        failures: None,
    }
}

/// Result of the fault-soak run behind `repro --faults`: the usual
/// observability snapshot plus how the injected faults surfaced at the
/// MPI layer.
pub struct FaultSoakRun {
    /// Point-to-point waits that completed successfully.
    pub ops_ok: u64,
    /// Waits that surfaced a transport error to the caller.
    pub ops_failed: u64,
    /// Counters, fabric stats, trace and audit of the faulted run.
    pub obs: ObservabilityRun,
}

/// Run a 4-rank mixed workload with the given link-fault plans armed on
/// the fabric. The workload is written fault-tolerantly — every transport
/// error is caught and tallied; any other error (or a rank panic) aborts
/// the run — so a `repro --faults <spec>` soak proves the recovery path
/// end to end: transient faults heal invisibly, fatal faults fail only
/// the owning request, and the auditor must stay clean throughout.
/// `srq` runs the soak on the shared-receive-queue pool instead of the
/// per-pair rings, so WC errors and recovery interleave with SRQ slot
/// recycling (`repro --faults <spec> --srq`, a permanent CI variant).
pub fn fault_soak_run(
    ccfg: &ClusterConfig,
    faults: &[fabric::LinkFault],
    srq: bool,
) -> FaultSoakRun {
    use dcfa_mpi::{Communicator, MpiError, Src, TagSel};
    use std::sync::Arc;

    const N: usize = 4;
    let mut sim = simcore::Simulation::new();
    let cluster = fabric::Cluster::new(sim.scheduler(), ccfg.clone());
    for f in faults {
        cluster.inject_link_fault(*f);
    }
    let ib = verbs::IbFabric::new(cluster.clone());
    let scif = scif::ScifFabric::new(cluster.clone());
    let cfg = MpiConfig {
        srq_depth: srq.then_some(256),
        ..MpiConfig::dcfa()
    };
    let tracer = dcfa_mpi::TraceBuf::new(cfg.trace_capacity);
    let metrics = dcfa_mpi::MetricsHub::new();
    let reports = Arc::new(parking_lot::Mutex::new(vec![None; N]));
    let reports2 = reports.clone();
    let tallies = Arc::new(parking_lot::Mutex::new((0u64, 0u64)));
    let tallies2 = tallies.clone();
    let opts = dcfa_mpi::LaunchOpts {
        tracer: Some(tracer.clone()),
        metrics: Some(metrics.clone()),
        ..Default::default()
    };
    let daemon = dcfa_mpi::launch(&sim, &ib, &scif, cfg.clone(), N, opts, move |ctx, comm| {
        let (r, n) = (comm.rank(), comm.size());
        let next = (r + 1) % n;
        let prev = (r + n - 1) % n;
        let skew = simcore::SimDuration::from_micros(150);
        let stx = comm.alloc(512).unwrap();
        let srx = comm.alloc(512).unwrap();
        let big = comm.alloc(64 << 10).unwrap();
        let (mut ok, mut failed) = (0u64, 0u64);
        let mut tally = |res: Result<dcfa_mpi::Status, MpiError>| match res {
            Ok(_) => ok += 1,
            Err(MpiError::Transport { .. }) | Err(MpiError::RemoteTransport { .. }) => failed += 1,
            Err(e) => panic!("unexpected MPI error under fault injection: {e}"),
        };
        // Eager ring traffic, waited individually so each operation's
        // outcome can be tallied.
        for _ in 0..8 {
            let rr = comm
                .irecv(ctx, &srx, Src::Rank(prev), TagSel::Tag(10))
                .unwrap();
            let sr = comm.isend(ctx, &stx, next, 10).unwrap();
            tally(comm.wait(ctx, sr));
            tally(comm.wait(ctx, rr));
        }
        // Rendezvous between pairs (0<->1, 2<->3), both flavours: the
        // skew forces the sender-first (RTS) path one round and the
        // receiver-first (RTR) path the next.
        let peer = r ^ 1;
        for recv_late in [true, false] {
            if r % 2 == 0 {
                if !recv_late {
                    ctx.sleep(skew);
                }
                let sr = comm.isend(ctx, &big, peer, 20).unwrap();
                tally(comm.wait(ctx, sr));
            } else {
                if recv_late {
                    ctx.sleep(skew);
                }
                let rr = comm
                    .irecv(ctx, &big, Src::Rank(peer), TagSel::Tag(20))
                    .unwrap();
                tally(comm.wait(ctx, rr));
            }
        }
        // ANY_SOURCE fan-in to rank 0 (sequence-locking under faults).
        if r == 0 {
            for _ in 1..n {
                let rr = comm.irecv(ctx, &srx, Src::Any, TagSel::Any).unwrap();
                tally(comm.wait(ctx, rr));
            }
        } else {
            let sr = comm.isend(ctx, &stx, 0, 30).unwrap();
            tally(comm.wait(ctx, sr));
        }
        let mut t = tallies2.lock();
        t.0 += ok;
        t.1 += failed;
        reports2.lock()[r] = Some(comm.dump());
    });
    let wall_start = std::time::Instant::now();
    let run_report = sim.run_expect();
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let events = tracer.snapshot();
    let per_rank: Vec<_> = reports
        .lock()
        .iter()
        .map(|r| r.expect("rank finished"))
        .collect();
    let mpi_ops = per_rank
        .iter()
        .map(|r| r.comm.eager_sends + r.comm.rndv_sends)
        .sum();
    let (ops_ok, ops_failed) = *tallies.lock();
    FaultSoakRun {
        ops_ok,
        ops_failed,
        obs: ObservabilityRun {
            reports: per_rank,
            daemon: daemon.map(|d| d.snapshot()),
            fabric: (0..cluster.num_nodes())
                .map(|n| cluster.fabric_stats(fabric::NodeId(n)))
                .collect(),
            dropped: tracer.dropped(),
            audit: audited(&events, tracer.dropped()),
            events,
            metrics,
            elapsed_ns: run_report.final_time.0,
            wall_ns,
            sim_events: run_report.events_processed,
            mpi_ops,
            cfg,
            ranks: N,
            failures: None,
        },
    }
}

/// Result of the control-plane chaos soak behind `repro --daemon-faults`:
/// operation outcomes, payload integrity, host-memory balance and the
/// audited trace of a 4-rank run whose delegation daemons crash, drop
/// replies and delay replies mid-flight.
pub struct DaemonFaultSoakRun {
    /// Point-to-point waits that completed successfully.
    pub ops_ok: u64,
    /// Waits that surfaced a transport error to the caller.
    pub ops_failed: u64,
    /// Received messages whose payload did not match the expected pattern.
    pub payload_errors: u64,
    /// Per rank-hosting node: (node, host pages used before, after). The
    /// two must match — a daemon crash or lease reclamation must never
    /// leak a host twin page.
    pub mem_balance: Vec<(usize, u64, u64)>,
    /// Counters, fabric stats, trace and audit of the chaotic run.
    pub obs: ObservabilityRun,
}

/// Run the 4-rank mixed workload with control-plane fault plans armed on
/// the delegation daemons (`repro --daemon-faults <spec>`): daemons crash
/// and get respawned by the supervisor, replies are dropped (answered
/// from the dedup cache on retransmit) or delayed past the command
/// timeout. Heartbeats and a lease TTL are on, so the reaper is live too.
/// Every payload is pattern-verified at the receiver, host twin pages
/// must balance, and the auditor must confirm each crash paired with a
/// respawn and each re-attach replayed its full journal.
pub fn daemon_fault_soak_run(
    ccfg: &ClusterConfig,
    faults: &[dcfa::DaemonFault],
) -> DaemonFaultSoakRun {
    use dcfa_mpi::{Communicator, MpiError, Src, TagSel};
    use std::sync::Arc;

    const N: usize = 4;
    let mut sim = simcore::Simulation::new();
    let cluster = fabric::Cluster::new(sim.scheduler(), ccfg.clone());
    let ib = verbs::IbFabric::new(cluster.clone());
    let scif = scif::ScifFabric::new(cluster.clone());
    let cfg = MpiConfig {
        heartbeat_interval: Some(simcore::SimDuration::from_micros(200)),
        ..MpiConfig::dcfa()
    };
    let tracer = dcfa_mpi::TraceBuf::new(cfg.trace_capacity);
    let metrics = dcfa_mpi::MetricsHub::new();
    let reports = Arc::new(parking_lot::Mutex::new(vec![None; N]));
    let reports2 = reports.clone();
    let tallies = Arc::new(parking_lot::Mutex::new((0u64, 0u64, 0u64)));
    let tallies2 = tallies.clone();
    let opts = dcfa_mpi::LaunchOpts {
        tracer: Some(tracer.clone()),
        metrics: Some(metrics.clone()),
        daemon: dcfa::DaemonConfig {
            faults: faults.to_vec(),
            // Exercise the reaper alongside the chaos: silent ranks are
            // kept alive by the heartbeat sidecar below.
            lease_ttl: Some(simcore::SimDuration::from_millis(2)),
            reaper_period: simcore::SimDuration::from_micros(500),
            ..Default::default()
        },
        ..Default::default()
    };
    let host = |n: usize| fabric::MemRef {
        node: fabric::NodeId(n),
        domain: fabric::Domain::Host,
    };
    let mem_before: Vec<u64> = (0..N).map(|n| cluster.mem_used(host(n))).collect();
    let daemon = dcfa_mpi::launch(&sim, &ib, &scif, cfg.clone(), N, opts, move |ctx, comm| {
        let (r, n) = (comm.rank(), comm.size());
        let next = (r + 1) % n;
        let prev = (r + n - 1) % n;
        let skew = simcore::SimDuration::from_micros(150);
        let stx = comm.alloc(512).unwrap();
        let srx = comm.alloc(512).unwrap();
        let big = comm.alloc(64 << 10).unwrap();
        let pattern = |len: usize, salt: u8| -> Vec<u8> {
            (0..len)
                .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
                .collect()
        };
        let (mut ok, mut failed, mut corrupt) = (0u64, 0u64, 0u64);
        let mut tally = |res: Result<dcfa_mpi::Status, MpiError>| match res {
            Ok(_) => ok += 1,
            Err(MpiError::Transport { .. }) | Err(MpiError::RemoteTransport { .. }) => failed += 1,
            Err(e) => panic!("unexpected MPI error under daemon faults: {e}"),
        };
        // Eager ring traffic: each message pattern-stamped and verified.
        for i in 0..8u8 {
            let rr = comm
                .irecv(ctx, &srx, Src::Rank(prev), TagSel::Tag(10))
                .unwrap();
            comm.write(&stx, 0, &pattern(512, i));
            let sr = comm.isend(ctx, &stx, next, 10).unwrap();
            tally(comm.wait(ctx, sr));
            let got = comm.wait(ctx, rr);
            let delivered = got.is_ok();
            tally(got);
            if delivered && comm.read_vec(&srx) != pattern(512, i) {
                corrupt += 1;
            }
        }
        // Rendezvous between pairs (0<->1, 2<->3), both skews. 64 KiB
        // is past the offload threshold, so every send needs a host
        // twin from the daemon — the resource ops the armed faults
        // crash, drop and delay.
        let peer = r ^ 1;
        for (round, recv_late) in [true, false].into_iter().enumerate() {
            let salt = 100 + round as u8;
            if r % 2 == 0 {
                if !recv_late {
                    ctx.sleep(skew);
                }
                comm.write(&big, 0, &pattern(64 << 10, salt));
                let sr = comm.isend(ctx, &big, peer, 20).unwrap();
                tally(comm.wait(ctx, sr));
            } else {
                if recv_late {
                    ctx.sleep(skew);
                }
                let rr = comm
                    .irecv(ctx, &big, Src::Rank(peer), TagSel::Tag(20))
                    .unwrap();
                let got = comm.wait(ctx, rr);
                let delivered = got.is_ok();
                tally(got);
                if delivered && comm.read_vec(&big) != pattern(64 << 10, salt) {
                    corrupt += 1;
                }
            }
        }
        // ANY_SOURCE fan-in to rank 0.
        if r == 0 {
            for _ in 1..n {
                let rr = comm.irecv(ctx, &srx, Src::Any, TagSel::Any).unwrap();
                tally(comm.wait(ctx, rr));
            }
        } else {
            let sr = comm.isend(ctx, &stx, 0, 30).unwrap();
            tally(comm.wait(ctx, sr));
        }
        let mut t = tallies2.lock();
        t.0 += ok;
        t.1 += failed;
        t.2 += corrupt;
        reports2.lock()[r] = Some(comm.dump());
    });
    let wall_start = std::time::Instant::now();
    let run_report = sim.run_expect();
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let mem_balance = (0..N)
        .map(|n| (n, mem_before[n], cluster.mem_used(host(n))))
        .collect();
    let events = tracer.snapshot();
    let per_rank: Vec<_> = reports
        .lock()
        .iter()
        .map(|r| r.expect("rank finished"))
        .collect();
    let mpi_ops = per_rank
        .iter()
        .map(|r| r.comm.eager_sends + r.comm.rndv_sends)
        .sum();
    let (ops_ok, ops_failed, payload_errors) = *tallies.lock();
    DaemonFaultSoakRun {
        ops_ok,
        ops_failed,
        payload_errors,
        mem_balance,
        obs: ObservabilityRun {
            reports: per_rank,
            daemon: daemon.map(|d| d.snapshot()),
            fabric: (0..cluster.num_nodes())
                .map(|n| cluster.fabric_stats(fabric::NodeId(n)))
                .collect(),
            dropped: tracer.dropped(),
            audit: audited(&events, tracer.dropped()),
            events,
            metrics,
            elapsed_ns: run_report.final_time.0,
            wall_ns,
            sim_events: run_report.events_processed,
            mpi_ops,
            cfg,
            ranks: N,
            failures: None,
        },
    }
}

// ---- scale (`repro --ranks N [--shards S]`) --------------------------------

/// Result of the audited neighbor-halo soak behind `repro --ranks N`:
/// per-rank counters, payload integrity and the auditor verdict at a rank
/// count far past the 4-rank suites.
pub struct ScaleRun {
    /// Ranks launched (one per simulated node).
    pub ranks: usize,
    /// DES event-wheel shards the run executed on.
    pub shards: usize,
    /// Point-to-point waits that completed successfully.
    pub ops_ok: u64,
    /// Waits that surfaced a transport error to the caller.
    pub ops_failed: u64,
    /// Received payloads whose contents did not match the sender's.
    pub corrupt: u64,
    /// Per-rank [`dcfa_mpi::StatsReport`], indexed by rank.
    pub reports: Vec<dcfa_mpi::StatsReport>,
    /// Protocol-auditor verdict over the traced run.
    pub audit: Result<dcfa_mpi::AuditReport, Vec<String>>,
    /// Events dropped by the trace ring (must be 0 for the audit to bind).
    pub dropped: u64,
    /// Virtual time the whole soak took, in nanoseconds.
    pub elapsed_ns: u64,
    /// Wall-clock time the soak took to execute, in nanoseconds.
    pub wall_ns: u64,
    /// Scheduler events processed.
    pub sim_events: u64,
}

impl ScaleRun {
    /// Lazily established QP pairs, summed over ranks. The scale gate:
    /// a neighbor workload must keep this O(ranks), not O(ranks^2).
    pub fn established_pairs(&self) -> u64 {
        self.reports.iter().map(|r| r.comm.pairs_established).sum()
    }

    /// Largest per-rank established-pair count.
    pub fn max_pairs_per_rank(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.comm.pairs_established)
            .max()
            .unwrap_or(0)
    }

    /// Largest per-rank communication-buffer footprint (receive pool +
    /// stage rings), in bytes. Must stay flat as ranks grow.
    pub fn bytes_per_rank(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.comm.comm_buffer_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Highest SRQ pool occupancy any rank saw.
    pub fn srq_highwater(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.comm.srq_highwater)
            .max()
            .unwrap_or(0)
    }
}

/// Run the audited neighbor-halo soak at `ranks` ranks (one per node) on
/// `shards` DES shards. Every rank exchanges salted, content-checked halos
/// with its ring neighbors at offsets 1 and 2 — the touched pairs stay
/// O(ranks), so with lazy connections only those ever get QPs and, in SRQ
/// mode (`srq`), each rank's receive memory is one shared pool. Optional
/// link-fault plans make it a fault soak; the workload tallies transport
/// errors instead of panicking on them.
pub fn scale_run(ranks: usize, shards: usize, srq: bool, faults: &[fabric::LinkFault]) -> ScaleRun {
    use dcfa_mpi::{Communicator, MpiError, Src, TagSel};
    use std::sync::Arc;

    const ROUNDS: u32 = 4;
    const HALO: u64 = 1024;

    let mut sim = simcore::Simulation::new();
    let ccfg = ClusterConfig::with_nodes(ranks.max(2));
    if shards > 1 {
        // Lookahead = the IB wire latency: shard assignment is per node,
        // so only inter-node events cross wheels.
        sim.set_shards(shards, ccfg.cost.ib_latency);
    }
    let cluster = fabric::Cluster::new(sim.scheduler(), ccfg.clone());
    for f in faults {
        cluster.inject_link_fault(*f);
    }
    let ib = verbs::IbFabric::new(cluster.clone());
    let scif = scif::ScifFabric::new(cluster.clone());
    let cfg = MpiConfig {
        srq_depth: if srq { Some(256) } else { None },
        ..MpiConfig::dcfa()
    };
    // Size the trace ring to the run: a dropped event would unbind the
    // auditor's verdict. `trace_capacity` is the configured floor.
    let trace_cap = (ranks * 2048).next_power_of_two().max(cfg.trace_capacity);
    let tracer = dcfa_mpi::TraceBuf::new(trace_cap);
    let reports = Arc::new(parking_lot::Mutex::new(vec![None; ranks]));
    let reports2 = reports.clone();
    let tallies = Arc::new(parking_lot::Mutex::new((0u64, 0u64, 0u64)));
    let tallies2 = tallies.clone();
    let opts = dcfa_mpi::LaunchOpts {
        tracer: Some(tracer.clone()),
        ..Default::default()
    };
    dcfa_mpi::launch(&sim, &ib, &scif, cfg, ranks, opts, move |ctx, comm| {
        let (me, n) = (comm.rank(), comm.size());
        let salt =
            |rank: usize, round: u32| (rank as u8).wrapping_mul(37).wrapping_add(round as u8);
        let fill = |s: u8| {
            (0..HALO as usize)
                .map(|i| (i as u8) ^ s)
                .collect::<Vec<u8>>()
        };
        // Ring-halo neighbor set at offsets +/-1 and +/-2 (deduplicated:
        // tiny clusters fold offsets onto the same rank).
        let mut peers: Vec<usize> = Vec::new();
        for off in [1usize, 2, n - 1, n - 2] {
            let p = (me + off) % n;
            if p != me && !peers.contains(&p) {
                peers.push(p);
            }
        }
        let sbufs: Vec<_> = peers.iter().map(|_| comm.alloc(HALO).unwrap()).collect();
        let rbufs: Vec<_> = peers.iter().map(|_| comm.alloc(HALO).unwrap()).collect();
        let (mut ok, mut failed, mut corrupt) = (0u64, 0u64, 0u64);
        for round in 0..ROUNDS {
            let mut reqs = Vec::with_capacity(peers.len() * 2);
            for (i, &p) in peers.iter().enumerate() {
                comm.write(&sbufs[i], 0, &fill(salt(me, round)));
                reqs.push(
                    comm.irecv(ctx, &rbufs[i], Src::Rank(p), TagSel::Tag(round))
                        .unwrap(),
                );
                reqs.push(comm.isend(ctx, &sbufs[i], p, round).unwrap());
            }
            for r in reqs {
                match comm.wait(ctx, r) {
                    Ok(_) => ok += 1,
                    Err(MpiError::Transport { .. }) | Err(MpiError::RemoteTransport { .. }) => {
                        failed += 1
                    }
                    Err(e) => panic!("unexpected MPI error in scale soak: {e}"),
                }
            }
            for (i, &p) in peers.iter().enumerate() {
                if comm.read_vec(&rbufs[i]) != fill(salt(p, round)) {
                    corrupt += 1;
                }
            }
        }
        let mut t = tallies2.lock();
        t.0 += ok;
        t.1 += failed;
        t.2 += corrupt;
        reports2.lock()[me] = Some(comm.dump());
    });
    let wall_start = std::time::Instant::now();
    let run_report = sim.run_expect();
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let events = tracer.snapshot();
    let per_rank: Vec<_> = reports
        .lock()
        .iter()
        .map(|r| r.expect("rank finished"))
        .collect();
    let (ops_ok, ops_failed, corrupt) = *tallies.lock();
    ScaleRun {
        ranks,
        shards: shards.max(1),
        ops_ok,
        ops_failed,
        corrupt,
        reports: per_rank,
        audit: audited(&events, tracer.dropped()),
        dropped: tracer.dropped(),
        elapsed_ns: run_report.final_time.0,
        wall_ns,
        sim_events: run_report.events_processed,
    }
}

// ---- rank death (`repro --ranks N --kill SPEC` / `--chaos`) ----------------

/// Per-surviving-rank outcome of the kill soak (killed ranks stay `None`).
#[derive(Debug, Clone, Copy)]
pub struct KillRankOut {
    /// Consolidated counter snapshot.
    pub report: dcfa_mpi::StatsReport,
    /// Size of the shrunk world this rank committed.
    pub sub_size: usize,
    /// MR-cache regions still pinned by leases at the end (leak gate).
    pub mr_pinned: usize,
    /// Request-table slots still occupied at the end (stranded-request
    /// gate).
    pub reqs_live: usize,
    /// Post-shrink verified exchanges completed.
    pub post_ok: u64,
}

/// Result of the rank-death soak behind `repro --ranks N --kill SPEC`:
/// a halo soak where a kill schedule fail-stops ranks mid-phase, the
/// survivors detect, revoke and shrink, and a further verified halo
/// round runs on the shrunk world.
pub struct KillSoakRun {
    /// Ranks launched.
    pub ranks: usize,
    /// Ranks the schedule killed, ascending.
    pub killed: Vec<usize>,
    /// Point-to-point waits (or entries) that completed successfully.
    pub ops_ok: u64,
    /// Operations that surfaced `PeerFailed`.
    pub ops_peer_failed: u64,
    /// Operations that surfaced `Revoked`.
    pub ops_revoked: u64,
    /// Received payloads whose contents did not match the sender's
    /// (pre- and post-shrink combined).
    pub corrupt: u64,
    /// Per-rank outcomes, indexed by original rank; killed ranks `None`.
    pub outs: Vec<Option<KillRankOut>>,
    /// Counters, trace, audit and (always-present) failure summary.
    pub obs: ObservabilityRun,
}

/// Upper bound on `after_ops` the kill-soak workload supports: the park
/// receive plus 8 halo rounds of 4 neighbors x (isend + irecv). Kills at
/// or below this are guaranteed to fire before the killed rank reaches
/// the shrink agreement, so the agreement commits exactly once per
/// survivor at the full death epoch.
pub const KILL_SOAK_MAX_AFTER_OPS: u64 = 65;

impl KillSoakRun {
    /// The post-recovery world size every survivor must have agreed on.
    pub fn expected_shrunk(&self) -> usize {
        self.ranks - self.killed.len()
    }

    /// Gate the run: every survivor finished, observed the recovery
    /// (`PeerFailed`/`Revoked`, never a hang), committed the same
    /// shrunk world, completed the verified post-shrink round with no
    /// corruption, and leaked no request slots or MR leases; the
    /// auditor must be clean and the trace ring unsaturated. Returns
    /// the violations (empty = healthy).
    pub fn healthy(&self) -> Result<(), Vec<String>> {
        let mut v = Vec::new();
        for (r, out) in self.outs.iter().enumerate() {
            let killed = self.killed.contains(&r);
            match out {
                None if !killed => v.push(format!("rank {r}: survivor hung (never finished)")),
                Some(_) if killed => v.push(format!("rank {r}: killed rank finished anyway")),
                Some(o) => {
                    if o.sub_size != self.expected_shrunk() {
                        v.push(format!(
                            "rank {r}: shrunk to {} ranks, expected {}",
                            o.sub_size,
                            self.expected_shrunk()
                        ));
                    }
                    if o.post_ok == 0 {
                        v.push(format!("rank {r}: no post-shrink exchange completed"));
                    }
                    if o.mr_pinned != 0 {
                        v.push(format!("rank {r}: {} MR leases still pinned", o.mr_pinned));
                    }
                    if o.reqs_live != 0 {
                        v.push(format!("rank {r}: {} request slots stranded", o.reqs_live));
                    }
                }
                None => {}
            }
        }
        if self.corrupt > 0 {
            v.push(format!("{} corrupt payloads", self.corrupt));
        }
        if self.obs.dropped > 0 {
            v.push(format!(
                "trace ring dropped {} events (audit unbound)",
                self.obs.dropped
            ));
        }
        if let Err(errors) = &self.obs.audit {
            for e in errors.iter().take(10) {
                v.push(format!("auditor: {e}"));
            }
        }
        if let Some(f) = &self.obs.failures {
            if f.kills != self.killed.len() as u64 {
                v.push(format!(
                    "{} kills recorded, schedule had {}",
                    f.kills,
                    self.killed.len()
                ));
            }
            if f.detections != self.killed.len() as u64 {
                v.push(format!(
                    "{} corpses promoted dead, expected {}",
                    f.detections,
                    self.killed.len()
                ));
            }
        }
        if v.is_empty() {
            Ok(())
        } else {
            Err(v)
        }
    }

    /// Deterministic digest of everything observable about the run
    /// (FNV-1a over outcome words and per-rank counters). Two runs of
    /// the same schedule must produce identical fingerprints — the
    /// chaos fuzzer's bit-for-bit replay gate.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.ranks as u64);
        for &k in &self.killed {
            mix(k as u64);
        }
        mix(self.ops_ok);
        mix(self.ops_peer_failed);
        mix(self.ops_revoked);
        mix(self.corrupt);
        mix(self.obs.elapsed_ns);
        mix(self.obs.sim_events);
        mix(self.obs.events.len() as u64);
        for out in self.outs.iter() {
            match out {
                None => mix(u64::MAX),
                Some(o) => {
                    let c = &o.report.comm;
                    mix(o.sub_size as u64);
                    mix(o.post_ok);
                    mix(c.eager_sends);
                    mix(c.rndv_sends);
                    mix(c.bytes_sent);
                    mix(c.bytes_received);
                    mix(c.peer_deaths_detected);
                    mix(c.revokes_observed);
                    mix(c.reqs_revoked);
                    mix(c.dead_reclaimed);
                    mix(c.agreement_restarts);
                }
            }
        }
        if let Some(f) = &self.obs.failures {
            mix(f.kills);
            mix(f.detections);
            mix(f.detection_latency_p99_ns);
            mix(f.revokes);
            mix(f.shrinks);
            mix(f.reclaimed);
        }
        h
    }
}

/// Run the audited halo soak at `ranks` ranks with a fail-stop kill
/// schedule armed. Phase 1 is the ring-halo exchange of [`scale_run`],
/// written ULFM-tolerantly: every operation's error is tallied
/// (`PeerFailed` / `Revoked`), never panicked on, and the rounds run to
/// completion so every kill fires at a deterministic operation count.
/// Survivors that observed an error revoke; a parked receive ensures
/// no rank reaches the agreement before the failure is visible; then
/// every survivor shrinks and runs a further verified halo round on
/// the renumbered world.
///
/// Every `after_ops` must be `<=` [`KILL_SOAK_MAX_AFTER_OPS`] so the
/// corpse dies before it could join the shrink agreement (kills beyond
/// it would still be survived — the agreement restarts — but the
/// single-commit gate below assumes the schedule fires in phase 1).
pub fn kill_soak_run(
    ranks: usize,
    shards: usize,
    srq: bool,
    kills: &[dcfa_mpi::KillSpec],
) -> KillSoakRun {
    use dcfa_mpi::{Communicator, MpiError, Src, TagSel};
    use std::sync::Arc;

    const ROUNDS: u32 = 8;
    const POST_ROUNDS: u32 = 2;
    const HALO: u64 = 1024;
    const PARK_TAG: u32 = 777;

    assert!(ranks >= 8, "kill soak needs at least 8 ranks");
    assert!(!kills.is_empty(), "kill soak needs a kill schedule");
    let mut killed: Vec<usize> = kills.iter().map(|k| k.rank).collect();
    killed.sort_unstable();
    killed.dedup();
    assert_eq!(killed.len(), kills.len(), "one kill per rank");
    assert!(
        killed.len() <= ranks.saturating_sub(4),
        "need at least 4 survivors"
    );
    for k in kills {
        assert!(k.rank < ranks, "kill targets rank {} of {ranks}", k.rank);
        assert!(
            (1..=KILL_SOAK_MAX_AFTER_OPS).contains(&k.after_ops),
            "after_ops {} outside the phase-1 window 1..={KILL_SOAK_MAX_AFTER_OPS}",
            k.after_ops
        );
    }

    let mut sim = simcore::Simulation::new();
    let ccfg = ClusterConfig::with_nodes(ranks);
    if shards > 1 {
        sim.set_shards(shards, ccfg.cost.ib_latency);
    }
    let cluster = fabric::Cluster::new(sim.scheduler(), ccfg.clone());
    let ib = verbs::IbFabric::new(cluster.clone());
    let scif = scif::ScifFabric::new(cluster.clone());
    let cfg = MpiConfig {
        srq_depth: if srq { Some(256) } else { None },
        peer_ttl: Some(simcore::SimDuration::from_micros(50)),
        ..MpiConfig::dcfa()
    };
    // `trace_capacity` is the configured floor; kill soaks scale it up
    // with the rank count so lifecycle streams survive whole.
    let trace_cap = (ranks * 4096).next_power_of_two().max(cfg.trace_capacity);
    let tracer = dcfa_mpi::TraceBuf::new(trace_cap);
    let metrics = dcfa_mpi::MetricsHub::new();
    let board = fabric::HealthBoard::new(ranks);
    let outs: Arc<parking_lot::Mutex<Vec<Option<KillRankOut>>>> =
        Arc::new(parking_lot::Mutex::new(vec![None; ranks]));
    let outs2 = outs.clone();
    let tallies = Arc::new(parking_lot::Mutex::new((0u64, 0u64, 0u64, 0u64)));
    let tallies2 = tallies.clone();
    let opts = dcfa_mpi::LaunchOpts {
        tracer: Some(tracer.clone()),
        metrics: Some(metrics.clone()),
        kills: kills.to_vec(),
        health: Some(board.clone()),
        ..Default::default()
    };
    let daemon = dcfa_mpi::launch(
        &sim,
        &ib,
        &scif,
        cfg.clone(),
        ranks,
        opts,
        move |ctx, comm| {
            let (me, n) = (comm.rank(), comm.size());
            let salt =
                |rank: usize, round: u32| (rank as u8).wrapping_mul(37).wrapping_add(round as u8);
            let fill = |s: u8| {
                (0..HALO as usize)
                    .map(|i| (i as u8) ^ s)
                    .collect::<Vec<u8>>()
            };
            let mut peers: Vec<usize> = Vec::new();
            for off in [1usize, 2, n - 1, n - 2] {
                let p = (me + off) % n;
                if p != me && !peers.contains(&p) {
                    peers.push(p);
                }
            }
            let sbufs: Vec<_> = peers.iter().map(|_| comm.alloc(HALO).unwrap()).collect();
            let rbufs: Vec<_> = peers.iter().map(|_| comm.alloc(HALO).unwrap()).collect();
            let pbuf = comm.alloc(64).unwrap();
            let (mut ok, mut peer_failed, mut revoked, mut corrupt) = (0u64, 0u64, 0u64, 0u64);
            let mut saw_failure = false;
            // Park first (operation #1): drained by the revocation flood (or
            // a source death), so no rank reaches the shrink agreement
            // before the failure is visible somewhere.
            let park = comm.irecv(ctx, &pbuf, Src::Rank((me + 1) % n), TagSel::Tag(PARK_TAG));
            // Phase 1: the halo rounds run to completion whatever happens —
            // entries and waits tally their errors instead of aborting, so
            // every rank's operation count advances deterministically and
            // every scheduled kill fires inside this phase.
            for round in 0..ROUNDS {
                let mut reqs: Vec<(usize, bool, dcfa_mpi::Request)> =
                    Vec::with_capacity(peers.len() * 2);
                for (i, &p) in peers.iter().enumerate() {
                    comm.write(&sbufs[i], 0, &fill(salt(me, round)));
                    let rr = comm.irecv(ctx, &rbufs[i], Src::Rank(p), TagSel::Tag(round));
                    let sr = comm.isend(ctx, &sbufs[i], p, round);
                    for (is_recv, q) in [(true, rr), (false, sr)] {
                        match q {
                            Ok(q) => reqs.push((i, is_recv, q)),
                            Err(MpiError::PeerFailed(_)) => {
                                peer_failed += 1;
                                saw_failure = true;
                            }
                            Err(MpiError::Revoked) => {
                                revoked += 1;
                                saw_failure = true;
                            }
                            Err(e) => panic!("rank {me}: unexpected entry error {e:?}"),
                        }
                    }
                }
                let mut delivered = vec![false; peers.len()];
                for (i, is_recv, q) in reqs {
                    match comm.wait(ctx, q) {
                        Ok(_) => {
                            ok += 1;
                            if is_recv {
                                delivered[i] = true;
                            }
                        }
                        Err(MpiError::PeerFailed(_)) => {
                            peer_failed += 1;
                            saw_failure = true;
                        }
                        Err(MpiError::Revoked) => {
                            revoked += 1;
                            saw_failure = true;
                        }
                        Err(e) => panic!("rank {me}: unexpected wait error {e:?}"),
                    }
                }
                for (i, &p) in peers.iter().enumerate() {
                    if delivered[i] && comm.read_vec(&rbufs[i]) != fill(salt(p, round)) {
                        corrupt += 1;
                    }
                }
            }
            // Recovery: observers revoke (many ranks revoke concurrently —
            // the flood is idempotent), the park drains with an error, and
            // every survivor agrees on the shrunk world.
            if saw_failure {
                comm.revoke(ctx);
            }
            match park {
                Ok(q) => {
                    let res = comm.wait(ctx, q);
                    assert!(res.is_err(), "rank {me}: park resolved as {res:?}");
                }
                Err(e) => panic!("rank {me}: park post failed at entry: {e:?}"),
            }
            let sub_size;
            let mut post_ok = 0u64;
            {
                let mut sub = comm.shrink(ctx).expect("survivor must shrink");
                sub_size = sub.size();
                let (sr, sn) = (sub.rank(), sub.size());
                let snext = (sr + 1) % sn;
                let sprev = (sr + sn - 1) % sn;
                // Phase 2: a verified exchange on the renumbered world. All
                // corpses died before the agreement (after_ops window), so
                // the shrunk communicator contains only live ranks and the
                // exchange is infallible.
                for round in 0..POST_ROUNDS {
                    let s = 0x40u8 ^ (sr as u8) ^ (round as u8);
                    sub.cluster().write(&sbufs[0], 0, &fill(s));
                    sub.sendrecv(ctx, &sbufs[0], snext, &rbufs[0], sprev, round)
                        .expect("post-shrink exchange failed");
                    post_ok += 1;
                    let want = 0x40u8 ^ (sprev as u8) ^ (round as u8);
                    if sub.cluster().read_vec(&rbufs[0]) != fill(want) {
                        corrupt += 1;
                    }
                }
            }
            for b in sbufs.iter().chain(rbufs.iter()) {
                comm.free(b);
            }
            comm.free(&pbuf);
            let mut t = tallies2.lock();
            t.0 += ok;
            t.1 += peer_failed;
            t.2 += revoked;
            t.3 += corrupt;
            outs2.lock()[me] = Some(KillRankOut {
                report: comm.dump(),
                sub_size,
                mr_pinned: comm.mr_pinned_len(),
                reqs_live: comm.requests_live(),
                post_ok,
            });
        },
    );
    // Livelock backstop: a recovery bug that strands one rank leaves the
    // heartbeat sidecars ticking forever, which would hang the soak (and
    // CI) instead of failing it. The bound is far above any legitimate
    // run (the 64-rank acceptance soak processes ~52k events), so hitting
    // it means a real wedge — fail fast with the board state.
    sim.set_event_limit(50_000_000);
    let wall_start = std::time::Instant::now();
    let run_report = match sim.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kill soak: simulation failed: {e}");
            eprintln!("health board at failure: {board:?}");
            for r in 0..ranks {
                if board.is_killed(r) || board.is_dead(r) {
                    eprintln!(
                        "  rank {r}: killed={} detected-dead={}",
                        board.is_killed(r),
                        board.is_dead(r)
                    );
                }
            }
            panic!("kill soak simulation failed: {e}");
        }
    };
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let events = tracer.snapshot();
    let outs: Vec<Option<KillRankOut>> = outs.lock().clone();
    let per_rank: Vec<_> = outs.iter().flatten().map(|o| o.report).collect();
    let mpi_ops = per_rank
        .iter()
        .map(|r| r.comm.eager_sends + r.comm.rndv_sends)
        .sum();
    let reclaimed = per_rank.iter().map(|r| r.comm.dead_reclaimed).sum();
    let failures = FailureSummary {
        kills: board.kills(),
        detections: board.detections(),
        detection_latency_p99_ns: p99(&board.detection_latency_samples()),
        revokes: board.revoke_epoch(),
        shrinks: board.shrink_count(),
        reclaimed,
    };
    let (ops_ok, ops_peer_failed, ops_revoked, corrupt) = *tallies.lock();
    KillSoakRun {
        ranks,
        killed,
        ops_ok,
        ops_peer_failed,
        ops_revoked,
        corrupt,
        outs,
        obs: ObservabilityRun {
            reports: per_rank,
            daemon: daemon.map(|d| d.snapshot()),
            fabric: (0..cluster.num_nodes())
                .map(|n| cluster.fabric_stats(fabric::NodeId(n)))
                .collect(),
            dropped: tracer.dropped(),
            audit: audited(&events, tracer.dropped()),
            events,
            metrics,
            elapsed_ns: run_report.final_time.0,
            wall_ns,
            sim_events: run_report.events_processed,
            mpi_ops,
            cfg,
            ranks,
            failures: Some(failures),
        },
    }
}

// ---- chaos fuzzer (`repro --chaos --seed N`) -------------------------------

/// Sample a randomized kill schedule from `seed`: 2-6 distinct victim
/// ranks, each with an `after_ops` inside the phase-1 window, so the
/// schedule composes with [`kill_soak_run`]'s single-commit gates. Same
/// seed, same schedule — the fuzzer's reproducibility anchor.
pub fn chaos_schedule(seed: u64, ranks: usize) -> Vec<dcfa_mpi::KillSpec> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    assert!(ranks >= 8, "chaos needs at least 8 ranks");
    let mut rng = StdRng::seed_from_u64(seed);
    let max_kills = (ranks / 4).clamp(2, 6);
    let n_kills = rng.random_range(2usize..=max_kills);
    let mut victims: Vec<usize> = Vec::new();
    while victims.len() < n_kills {
        let r = rng.random_range(0usize..ranks);
        if !victims.contains(&r) {
            victims.push(r);
        }
    }
    victims
        .into_iter()
        .map(|rank| dcfa_mpi::KillSpec {
            rank,
            after_ops: rng.random_range(2u64..=KILL_SOAK_MAX_AFTER_OPS),
        })
        .collect()
}

/// Verdict of one chaos iteration: the sampled schedule, the replayed
/// fingerprints, the gate violations (empty = survived), and — when the
/// schedule found a failure — the greedily shrunk minimal reproducer.
pub struct ChaosReport {
    pub seed: u64,
    pub schedule: Vec<dcfa_mpi::KillSpec>,
    /// Fingerprint of the first run.
    pub fingerprint: u64,
    /// Fingerprint of the bit-for-bit replay (must equal `fingerprint`).
    pub replay_fingerprint: u64,
    /// Gate violations of the seeded schedule (determinism included).
    pub violations: Vec<String>,
    /// Minimal reproducing schedule (greedy drop-one-kill), when the
    /// seeded schedule violated a gate.
    pub minimal: Option<Vec<dcfa_mpi::KillSpec>>,
    /// Soak executions this report cost (2 + shrink attempts).
    pub runs: usize,
}

/// Render a kill schedule in `--kill` syntax (`after:rank,...`) so a
/// chaos finding is directly replayable from the CLI.
pub fn kill_spec_string(kills: &[dcfa_mpi::KillSpec]) -> String {
    kills
        .iter()
        .map(|k| format!("{}:{}", k.after_ops, k.rank))
        .collect::<Vec<_>>()
        .join(",")
}

/// One deterministic chaos iteration: sample a kill schedule from
/// `seed`, soak it twice (the replay must fingerprint identically —
/// any divergence is itself a violation), gate the outcome, and on a
/// failure greedily shrink the schedule to a minimal reproducer by
/// dropping one kill at a time while the violation persists.
pub fn chaos_run(seed: u64, ranks: usize, shards: usize, srq: bool) -> ChaosReport {
    let schedule = chaos_schedule(seed, ranks);
    let first = kill_soak_run(ranks, shards, srq, &schedule);
    let replay = kill_soak_run(ranks, shards, srq, &schedule);
    let fingerprint = first.fingerprint();
    let replay_fingerprint = replay.fingerprint();
    let mut violations = first.healthy().err().unwrap_or_default();
    if fingerprint != replay_fingerprint {
        violations.push(format!(
            "nondeterministic replay: fingerprint {fingerprint:#018x} != {replay_fingerprint:#018x}"
        ));
    }
    let mut runs = 2;
    let mut minimal = None;
    if !violations.is_empty() {
        let mut cur = schedule.clone();
        let mut i = 0;
        while cur.len() > 1 && i < cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            runs += 1;
            if kill_soak_run(ranks, shards, srq, &cand).healthy().is_err() {
                cur = cand; // still reproduces without this kill: drop it
            } else {
                i += 1; // this kill is load-bearing: keep it
            }
        }
        minimal = Some(cur);
    }
    ChaosReport {
        seed,
        schedule,
        fingerprint,
        replay_fingerprint,
        violations,
        minimal,
        runs,
    }
}

/// Write a set of series as CSV: `size,<label1>,<label2>,...`.
pub fn write_series_csv(path: &std::path::Path, series: &[Series]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(f, "size")?;
    for s in series {
        write!(f, ",{}", s.label.replace(',', ";"))?;
    }
    writeln!(f)?;
    if let Some(first) = series.first() {
        for (i, &(size, _)) in first.points.iter().enumerate() {
            write!(f, "{size}")?;
            for s in series {
                write!(f, ",{}", s.points[i].1)?;
            }
            writeln!(f)?;
        }
    }
    f.flush()
}

/// Write the stencil grid as CSV: `runtime,procs,threads,iter_us,speedup`.
pub fn write_stencil_csv(path: &std::path::Path, cells: &[StencilCell]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "runtime,procs,threads,iter_us,speedup_vs_serial")?;
    for c in cells {
        writeln!(
            f,
            "{},{},{},{},{}",
            c.runtime.replace(',', ";"),
            c.procs,
            c.threads,
            c.iter_us,
            c.speedup_vs_serial
        )?;
    }
    f.flush()
}

/// Pretty-print a set of series as an aligned table (sizes as rows).
pub fn print_series(title: &str, unit: &str, series: &[Series]) {
    println!("\n== {title} ==");
    print!("{:>10}", "size");
    for s in series {
        print!("  {:>30}", s.label);
    }
    println!("  [{unit}]");
    if series.is_empty() {
        return;
    }
    for (i, &(size, _)) in series[0].points.iter().enumerate() {
        print!("{size:>10}");
        for s in series {
            print!("  {:>30.3}", s.points[i].1);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweep_is_powers_of_two() {
        let s = size_sweep(10);
        assert_eq!(s.first(), Some(&4));
        assert_eq!(s.last(), Some(&1024));
        for w in s.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn iters_shrink_with_size() {
        assert!(iters_for(4) > iters_for(64 << 10));
        assert!(iters_for(64 << 10) > iters_for(4 << 20));
        assert!(iters_for(4 << 20) >= 4, "large sizes keep enough samples");
    }

    #[test]
    fn csv_writer_roundtrip() {
        let dir = std::env::temp_dir().join("dcfa-bench-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let series = vec![
            Series {
                label: "a,b".into(),
                points: vec![(4, 1.5), (8, 2.5)],
            },
            Series {
                label: "c".into(),
                points: vec![(4, 3.0), (8, 4.0)],
            },
        ];
        write_series_csv(&path, &series).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("size,a;b,c")); // comma escaped
        assert_eq!(lines.next(), Some("4,1.5,3"));
        assert_eq!(lines.next(), Some("8,2.5,4"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stencil_csv_writer() {
        let dir = std::env::temp_dir().join("dcfa-bench-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.csv");
        let cells = vec![StencilCell {
            runtime: "DCFA-MPI",
            procs: 8,
            threads: 56,
            iter_us: 166.1,
            speedup_vs_serial: 118.7,
        }];
        write_stencil_csv(&path, &cells).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("DCFA-MPI,8,56,166.1,118.7"));
        std::fs::remove_file(&path).unwrap();
    }
}
