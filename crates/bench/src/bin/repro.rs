//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all            # everything (a few minutes in release mode)
//! repro table1         # server architecture (Table I analogue)
//! repro fig5           # RDMA-write bandwidth by direction
//! repro fig7 | fig8    # non-blocking RTT / bandwidth (offload buffer)
//! repro fig9           # DCFA-MPI vs Intel-MPI-on-Phi bandwidth
//! repro table2 fig10   # communication-only app
//! repro table3 fig11 fig12   # five-point stencil
//! repro --quick all    # reduced sweeps (for smoke testing)
//! repro --stats        # per-protocol counters of a traced 4-rank run
//! repro --trace        # tail of the protocol event ring + audit verdict
//! repro --faults SPEC [--srq]
//!                      # fault-soak the 4-rank run; SPEC is a comma list
//!                      # of <after>:<kind>[@<src>-><dst>] fault plans,
//!                      # e.g. "2:transient,9:fatal@0->1". --srq runs it
//!                      # on the shared-receive-queue pool (CI variant)
//! repro --daemon-faults SPEC
//!                      # control-plane chaos soak: crash/drop/delay the
//!                      # delegation daemons; SPEC is a comma list of
//!                      # <after>:<kind>[@<node>] plans, e.g.
//!                      # "6:crash,20:drop@1,35:delay"
//! repro --metrics-json PATH
//!                      # run the profiled 4-rank mixed workload and write
//!                      # the versioned JSON performance report to PATH
//! repro --compare-metrics BASELINE [--tolerance PCT]
//!                      # diff the current run against a saved report;
//!                      # exits 1 if p99/bandwidth drift beyond PCT
//!                      # (default 25), 2 if a report cannot be parsed
//! repro --ranks N [--shards S] [--no-srq]
//!                      # audited neighbor-halo fault soak at N ranks (one
//!                      # per node) on S DES shards; SRQ receive pooling is
//!                      # on unless --no-srq. Gates: auditor OK, 0 corrupt
//!                      # payloads, established pairs O(ranks), per-rank
//!                      # buffer memory under a flat ceiling. Exits 1 on
//!                      # any violation.
//! repro --scale-curve PATH [--shards S] [--no-srq]
//!                      # sweep ranks 8/16/32/64, write the memory-per-rank
//!                      # curve to PATH as CSV, and gate sub-quadratic
//!                      # growth of pairs and buffer bytes
//! repro --kill SPEC [--ranks N] [--shards S] [--no-srq]
//!                      # rank-death soak at N ranks (default 64): SPEC is
//!                      # a comma list of <after_ops>:<rank> fail-stop
//!                      # kills, e.g. "10:7,25:31,40:12,55:50". Survivors
//!                      # must detect, revoke, shrink to the same world and
//!                      # complete a verified exchange on it; exits 1 on
//!                      # any violation. --metrics-json / --compare-metrics
//!                      # apply to this run's report (with its `failures`
//!                      # section) instead of the 4-rank profile
//! repro --chaos [--seed N] [--ranks N] [--shards S] [--no-srq]
//!                      # deterministic chaos fuzzing: sample a kill
//!                      # schedule from the seed, soak it twice (replay
//!                      # must be bit-for-bit identical), gate the outcome,
//!                      # and on a failure print the greedily shrunk
//!                      # minimal reproducer in --kill syntax
//! repro --trace-out PATH.json
//!                      # export the traced run as Chrome/Perfetto
//!                      # trace-event JSON (one track per rank, flow
//!                      # arrows along causal edges); self-validated
//!                      # against the trace-event schema before writing.
//!                      # Applies to the kill soak with --kill, else to
//!                      # the 4-rank mixed run
//! repro --explain-msg RANK:SEQ
//!                      # print the cross-rank causal timeline of every
//!                      # message sent by RANK with pair sequence SEQ
//!                      # (same run selection as --trace-out)
//! ```

use bench::{
    ablation_eager_threshold, ablation_host_staged_bcast, ablation_mr_cache,
    ablation_offload_threshold, ablation_rndv_skew, fig10, fig11_fig12, fig5, fig7_fig8, fig9,
    fig9_small_rtt, print_series, write_series_csv, write_stencil_csv,
};
use fabric::ClusterConfig;

fn minor_faults() -> u64 {
    std::fs::read_to_string("/proc/self/stat")
        .ok()
        .and_then(|s| s.split(' ').nth(9).and_then(|v| v.parse().ok()))
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // `--csv DIR` additionally writes figN.csv data files into DIR.
    let csv_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if let Some(d) = &csv_dir {
        std::fs::create_dir_all(d).expect("cannot create csv dir");
    }
    // `--faults SPEC` runs the fault-injection soak instead of a sweep.
    let fault_spec: Option<&String> = args
        .iter()
        .position(|a| a == "--faults")
        .and_then(|i| args.get(i + 1));
    // `--daemon-faults SPEC` runs the control-plane chaos soak.
    let daemon_fault_spec: Option<&String> = args
        .iter()
        .position(|a| a == "--daemon-faults")
        .and_then(|i| args.get(i + 1));
    // `--metrics-json PATH` writes the versioned JSON performance report.
    let metrics_json: Option<&String> = args
        .iter()
        .position(|a| a == "--metrics-json")
        .and_then(|i| args.get(i + 1));
    // `--compare-metrics BASELINE` gates the current run against a saved
    // report, at `--tolerance PCT` (default 25%).
    let compare_metrics: Option<&String> = args
        .iter()
        .position(|a| a == "--compare-metrics")
        .and_then(|i| args.get(i + 1));
    let tolerance: f64 = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .map(|s| match s.parse::<f64>() {
            Ok(v) if v >= 0.0 => v,
            _ => {
                eprintln!("bad --tolerance {s:?}: expected a non-negative percentage");
                std::process::exit(2);
            }
        })
        .unwrap_or(25.0);
    let parse_count = |flag: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| match s.parse::<usize>() {
                Ok(v) if v >= 1 => v,
                _ => {
                    eprintln!("bad {flag} {s:?}: expected a positive integer");
                    std::process::exit(2);
                }
            })
    };
    // `--ranks N [--shards S] [--no-srq]` runs the audited scale soak.
    let scale_ranks = parse_count("--ranks");
    let scale_shards = parse_count("--shards").unwrap_or(1);
    let scale_srq = !args.iter().any(|a| a == "--no-srq");
    // `--srq` moves the 4-rank `--faults` soak onto the SRQ pool.
    let fault_srq = args.iter().any(|a| a == "--srq");
    // `--kill SPEC` runs the rank-death soak; `--chaos [--seed N]` the
    // deterministic chaos fuzzer. Both default to 64 ranks.
    let kill_spec: Option<&String> = args
        .iter()
        .position(|a| a == "--kill")
        .and_then(|i| args.get(i + 1));
    let chaos = args.iter().any(|a| a == "--chaos");
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| match s.parse::<u64>() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("bad --seed {s:?}: expected an unsigned integer");
                std::process::exit(2);
            }
        })
        .unwrap_or(1);
    // `--scale-curve PATH` sweeps rank counts and writes the memory curve.
    let scale_curve: Option<&String> = args
        .iter()
        .position(|a| a == "--scale-curve")
        .and_then(|i| args.get(i + 1));
    // `--trace-out PATH.json` exports the traced run as Perfetto
    // trace-event JSON; `--explain-msg RANK:SEQ` prints one message's
    // cross-rank causal timeline. Both apply to the kill soak when
    // `--kill` is given, otherwise to the 4-rank mixed run.
    let trace_out: Option<&String> = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1));
    let explain_msg: Option<(usize, u64)> = args
        .iter()
        .position(|a| a == "--explain-msg")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            let parsed = s
                .split_once(':')
                .and_then(|(r, q)| Some((r.trim().parse().ok()?, q.trim().parse().ok()?)));
            match parsed {
                Some(v) => v,
                None => {
                    eprintln!("bad --explain-msg {s:?}: expected <rank>:<seq>");
                    std::process::exit(2);
                }
            }
        });
    let mut skip_next = false;
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--csv"
                || *a == "--faults"
                || *a == "--daemon-faults"
                || *a == "--metrics-json"
                || *a == "--compare-metrics"
                || *a == "--tolerance"
                || *a == "--ranks"
                || *a == "--shards"
                || *a == "--scale-curve"
                || *a == "--kill"
                || *a == "--seed"
                || *a == "--trace-out"
                || *a == "--explain-msg"
            {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .map(|s| s.as_str())
        .collect();
    let show_stats = args.iter().any(|a| a == "--stats");
    let show_trace = args.iter().any(|a| a == "--trace");
    // A bare `repro --stats` / `--trace` / `--faults` / `--daemon-faults`
    // / `--metrics-json` / `--compare-metrics` runs only that report, not
    // the full figure sweep.
    let all = wanted.contains(&"all")
        || (wanted.is_empty()
            && !show_stats
            && !show_trace
            && !chaos
            && fault_spec.is_none()
            && daemon_fault_spec.is_none()
            && metrics_json.is_none()
            && compare_metrics.is_none()
            && scale_ranks.is_none()
            && scale_curve.is_none()
            && kill_spec.is_none()
            && trace_out.is_none()
            && explain_msg.is_none());
    let want = |k: &str| all || wanted.contains(&k);

    if let Some(spec) = kill_spec {
        kill_soak(
            spec,
            scale_ranks.unwrap_or(64),
            scale_shards,
            scale_srq,
            metrics_json,
            compare_metrics,
            tolerance,
            trace_out,
            explain_msg,
        );
    } else if let Some(ranks) = scale_ranks {
        // With `--chaos`, `--ranks` parameterizes the fuzzer instead.
        if !chaos {
            scale_soak(ranks, scale_shards, scale_srq);
        }
    }
    if chaos {
        chaos_fuzz(seed, scale_ranks.unwrap_or(64), scale_shards, scale_srq);
    }
    if let Some(path) = scale_curve {
        scale_curve_sweep(path, scale_shards, scale_srq);
    }
    if let Some(spec) = fault_spec {
        fault_soak(spec, fault_srq);
    }
    if let Some(spec) = daemon_fault_spec {
        daemon_fault_soak(spec);
    }
    // `--trace-out` / `--explain-msg` without `--kill` attach to the same
    // traced 4-rank run `--stats` and `--trace` report on.
    if show_stats
        || show_trace
        || (kill_spec.is_none() && (trace_out.is_some() || explain_msg.is_some()))
    {
        observability(
            show_stats,
            show_trace,
            kill_spec.is_none().then_some(trace_out).flatten(),
            if kill_spec.is_none() {
                explain_msg
            } else {
                None
            },
        );
    }
    // The kill soak consumes `--metrics-json` / `--compare-metrics` itself
    // (its report carries the `failures` section).
    if (metrics_json.is_some() || compare_metrics.is_some()) && kill_spec.is_none() {
        metrics_report(metrics_json, compare_metrics, tolerance);
    }

    let ccfg = ClusterConfig::paper();
    let max_pow = if quick { 18 } else { 22 }; // 256 KiB or 4 MiB sweeps
    let (sn, siters) = if quick { (258, 10) } else { (1282, 100) };

    if want("table1") {
        println!("== Table I: simulated server architecture ==");
        println!("{ccfg}");
    }

    if want("fig5") {
        let series = fig5(&ccfg, max_pow);
        print_series(
            "Figure 5: InfiniBand RDMA-write bandwidth by transfer direction",
            "GB/s",
            &series,
        );
        if let Some(d) = &csv_dir {
            write_series_csv(&d.join("fig5.csv"), &series).expect("csv write");
        }
    }

    if want("fig7") || want("fig8") {
        let (rtt, bw) = fig7_fig8(&ccfg, max_pow);
        if want("fig7") {
            print_series(
                "Figure 7: non-blocking inter-node RTT (MPI_Isend/MPI_Irecv)",
                "us",
                &rtt,
            );
            if let Some(d) = &csv_dir {
                write_series_csv(&d.join("fig7.csv"), &rtt).expect("csv write");
            }
        }
        if want("fig8") {
            print_series("Figure 8: non-blocking inter-node bandwidth", "GB/s", &bw);
            if let Some(d) = &csv_dir {
                write_series_csv(&d.join("fig8.csv"), &bw).expect("csv write");
            }
        }
    }

    if want("fig9") {
        let series = fig9(&ccfg, max_pow);
        print_series(
            "Figure 9: blocking ping-pong bandwidth, DCFA-MPI vs Intel MPI on Xeon Phi",
            "GB/s",
            &series,
        );
        let (d, i) = fig9_small_rtt(&ccfg);
        println!("4-byte blocking RTT: DCFA-MPI {d:.1} us (paper: 15), Intel-MPI-on-Phi {i:.1} us (paper: 28)");
        if let Some(dir) = &csv_dir {
            write_series_csv(&dir.join("fig9.csv"), &series).expect("csv write");
        }
    }

    if want("table2") {
        println!("\n== Table II: communication-only data volume per iteration ==");
        println!("{:>12} | {:<40}", "Data size", "X bytes");
        println!(
            "{:>12} | {:<40}",
            "Offloading", "Copy In X + Copy Out X (offload mode only)"
        );
        println!("{:>12} | {:<40}", "MPI", "Send X + Receive X");
    }

    if want("fig10") {
        let series = fig10(&ccfg, max_pow);
        print_series(
            "Figure 10: communication-only app, per-iteration time",
            "us",
            &series,
        );
        if let Some(dir) = &csv_dir {
            write_series_csv(&dir.join("fig10.csv"), &series).expect("csv write");
        }
        if let (Some(d), Some(o)) = (series.first(), series.get(1)) {
            let first = o.points[0].1 / d.points[0].1;
            let last = o.points.last().unwrap().1 / d.points.last().unwrap().1;
            println!("speed-up of DCFA-MPI: {first:.1}x at {}B (paper: ~12x) .. {last:.1}x at {}B (paper: ~2x)",
                d.points[0].0, d.points.last().unwrap().0);
        }
    }

    if want("table3") {
        let p = apps::StencilParams::paper(8, 56);
        println!(
            "\n== Table III: five-point stencil data sizes (n = {}) ==",
            p.n
        );
        println!("{:>22} | {:>12}", "Problem size", format!("{0} x {0}", p.n));
        println!(
            "{:>22} | {:>12}",
            "Computing data",
            format!("{:.1} MB", p.grid_bytes() as f64 / 1e6)
        );
        println!(
            "{:>22} | {:>12}",
            "Offloading data",
            format!("2 x {:.1} KB", p.halo_bytes() as f64 / 1e3)
        );
        println!(
            "{:>22} | {:>12}",
            "MPI data",
            format!("2 x {:.1} KB", p.halo_bytes() as f64 / 1e3)
        );
    }

    if want("fig11") || want("fig12") {
        let procs: &[usize] = &[1, 2, 4, 8];
        let threads: &[u32] = if quick {
            &[1, 8, 56]
        } else {
            &[1, 4, 8, 16, 28, 56]
        };
        let (serial_us, cells) = fig11_fig12(&ccfg, sn, siters, procs, threads);
        println!(
            "\n== Figures 11/12: five-point stencil, n = {sn}, {siters} iterations (serial: {:.1} us/iter) ==",
            serial_us
        );
        println!(
            "{:>30} {:>6} {:>8} {:>14} {:>10}",
            "runtime", "procs", "threads", "us/iter", "speedup"
        );
        for c in &cells {
            println!(
                "{:>30} {:>6} {:>8} {:>14.1} {:>10.1}",
                c.runtime, c.procs, c.threads, c.iter_us, c.speedup_vs_serial
            );
        }
        // Headline numbers (paper: 117x / 113x / 74x at 8 procs x 56 threads).
        let headline: Vec<_> = cells
            .iter()
            .filter(|c| c.procs == 8 && c.threads == *threads.last().unwrap())
            .collect();
        println!(
            "\nheadline @ 8 procs x {} threads:",
            threads.last().unwrap()
        );
        for c in headline {
            println!("  {:<30} {:>7.1}x", c.runtime, c.speedup_vs_serial);
        }
        if let Some(dir) = &csv_dir {
            write_stencil_csv(&dir.join("fig11_12.csv"), &cells).expect("csv write");
        }
    }

    if want("ablations") {
        println!("\n== Ablations (design choices, DESIGN.md §6) ==");
        println!("offloading-send-buffer threshold sweep @256 KiB message (RTT us):");
        for (thr, us) in ablation_offload_threshold(&ccfg, 256 << 10) {
            let label = if thr == u64::MAX {
                "off".to_string()
            } else {
                format!("{}K", thr >> 10)
            };
            println!("  threshold {label:>5}: {us:>10.1} us");
        }
        let (with_us, without_us) = ablation_mr_cache(&ccfg, 1 << 20);
        println!("MR cache pool @1 MiB rendezvous: with {with_us:.1} us, without {without_us:.1} us ({:.2}x)",
            without_us / with_us);
        println!("eager-threshold sweep @8 KiB message (RTT us):");
        for (thr, us) in ablation_eager_threshold(&ccfg, 8 << 10) {
            println!("  eager <= {:>4}K: {us:>10.1} us", thr >> 10);
        }
        let (rf, sf) = ablation_rndv_skew(&ccfg, 512 << 10);
        println!("rendezvous skew @512 KiB: receiver-first {rf:.1} us, sender-first {sf:.1} us");
        let (plain, staged) = ablation_host_staged_bcast(&ccfg, 2 << 20);
        println!("host-staged bcast @2 MiB x 8 ranks (future work §VI): plain {plain:.1} us, staged {staged:.1} us ({:.2}x)",
            plain / staged);
    }
}

/// The transient link faults every scale soak runs under: enough churn to
/// exercise retry and reorder handling at rank counts the 4-rank suites
/// never reach, but nothing fatal — every operation must still succeed.
const SCALE_FAULT_SPEC: &str = "7:transient,23:retry,61:transient";

/// `--ranks N [--shards S] [--no-srq]`: the audited neighbor-halo fault
/// soak at scale. Prints the scale counters and exits 1 if the auditor
/// objects, a payload was corrupted, an operation failed, connections grew
/// past the touched O(ranks) neighbor set, or per-rank buffer memory broke
/// its flat ceiling.
fn scale_soak(ranks: usize, shards: usize, srq: bool) {
    // 4 ring neighbors per rank, doubled for slack (boot-order effects).
    let max_pairs = ranks as u64 * 8;
    // One shared receive pool + a handful of per-neighbor stage rings;
    // independent of the rank count.
    let max_bytes_per_rank: u64 = 16 << 20;
    let faults = fabric::parse_fault_spec(SCALE_FAULT_SPEC).expect("builtin fault spec");
    println!(
        "== scale soak: {ranks} ranks on {} DES shard(s), SRQ {}, {} transient fault plan(s) ==",
        shards.max(1),
        if srq { "on" } else { "off" },
        faults.len()
    );
    let run = bench::scale_run(ranks, shards, srq, &faults);
    println!(
        "virtual time {:.1} ms | wall {:.1} ms | {} events",
        run.elapsed_ns as f64 / 1e6,
        run.wall_ns as f64 / 1e6,
        run.sim_events
    );
    println!(
        "operations: {} completed, {} failed, {} corrupted payloads",
        run.ops_ok, run.ops_failed, run.corrupt
    );
    println!(
        "pairs established: {} total, {} max per rank (full mesh would be {})",
        run.established_pairs(),
        run.max_pairs_per_rank(),
        ranks as u64 * (ranks as u64 - 1)
    );
    println!(
        "comm buffer bytes per rank: {} max | srq pool high-water: {} slot(s)",
        run.bytes_per_rank(),
        run.srq_highwater()
    );
    let mut bad = false;
    match &run.audit {
        Ok(report) => println!("auditor: OK — {report:?}"),
        Err(errors) => {
            println!("auditor: {} invariant violations", errors.len());
            for e in errors.iter().take(20) {
                println!("  {e}");
            }
            bad = true;
        }
    }
    if run.dropped > 0 {
        println!(
            "FAIL: trace ring dropped {} events (audit unbound)",
            run.dropped
        );
        bad = true;
    }
    if run.corrupt > 0 || run.ops_failed > 0 {
        println!(
            "FAIL: {} corrupt payloads, {} failed operations under transient faults",
            run.corrupt, run.ops_failed
        );
        bad = true;
    }
    if run.established_pairs() > max_pairs {
        println!(
            "FAIL: {} pairs established, gate is {} (O(ranks) neighbor set)",
            run.established_pairs(),
            max_pairs
        );
        bad = true;
    }
    if run.bytes_per_rank() > max_bytes_per_rank {
        println!(
            "FAIL: {} comm buffer bytes per rank, ceiling is {}",
            run.bytes_per_rank(),
            max_bytes_per_rank
        );
        bad = true;
    }
    if srq && run.srq_highwater() == 0 {
        println!("FAIL: SRQ mode on but the pool was never used");
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
    println!();
}

/// `--scale-curve PATH`: sweep the soak over ranks 8/16/32/64, write the
/// per-rank memory and connection curve as CSV, and gate sub-quadratic
/// growth: connections scale linearly with ranks and per-rank buffer bytes
/// stay flat. Exits 1 on a violation (including any per-run gate).
fn scale_curve_sweep(path: &str, shards: usize, srq: bool) {
    let faults = fabric::parse_fault_spec(SCALE_FAULT_SPEC).expect("builtin fault spec");
    let sweep = [8usize, 16, 32, 64];
    let mut rows = Vec::new();
    println!(
        "== scale curve: ranks {sweep:?} on {} DES shard(s), SRQ {} ==",
        shards.max(1),
        if srq { "on" } else { "off" }
    );
    for &ranks in &sweep {
        let run = bench::scale_run(ranks, shards, srq, &faults);
        let audit_ok = run.audit.is_ok() && run.dropped == 0;
        println!(
            "ranks {ranks:>4}: {:>6} pairs, {:>9} B/rank, srq high-water {:>3}, audit {}",
            run.established_pairs(),
            run.bytes_per_rank(),
            run.srq_highwater(),
            if audit_ok { "OK" } else { "FAIL" }
        );
        rows.push((run, audit_ok));
    }
    let csv: String = std::iter::once(
        "ranks,established_pairs,max_pairs_per_rank,bytes_per_rank,srq_highwater\n".to_string(),
    )
    .chain(rows.iter().map(|(r, _)| {
        format!(
            "{},{},{},{},{}\n",
            r.ranks,
            r.established_pairs(),
            r.max_pairs_per_rank(),
            r.bytes_per_rank(),
            r.srq_highwater()
        )
    }))
    .collect();
    if let Err(e) = std::fs::write(path, csv) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    }
    println!("memory-per-rank curve written to {path}");
    let mut bad = false;
    for (r, audit_ok) in &rows {
        if !audit_ok || r.corrupt > 0 || r.ops_failed > 0 {
            println!(
                "FAIL: ranks {} run unhealthy (audit ok: {audit_ok}, corrupt {}, failed {})",
                r.ranks, r.corrupt, r.ops_failed
            );
            bad = true;
        }
    }
    let (first, _) = &rows[0];
    let (last, _) = &rows[rows.len() - 1];
    let rank_growth = (last.ranks / first.ranks) as u64;
    // Connections: linear in ranks (x1.5 slack). Quadratic growth would
    // multiply by rank_growth^2.
    if last.established_pairs() > first.established_pairs() * rank_growth * 3 / 2 {
        println!(
            "FAIL: pairs grew {} -> {} over a {}x rank increase (super-linear)",
            first.established_pairs(),
            last.established_pairs(),
            rank_growth
        );
        bad = true;
    }
    // Per-rank memory: flat (x2 slack). Per-pair receive rings would grow
    // it by rank_growth.
    if last.bytes_per_rank() > first.bytes_per_rank() * 2 {
        println!(
            "FAIL: per-rank buffer bytes grew {} -> {} over a {}x rank increase",
            first.bytes_per_rank(),
            last.bytes_per_rank(),
            rank_growth
        );
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
    println!();
}

/// `--kill SPEC [--ranks N]`: the rank-death soak. Parses the kill
/// schedule, runs the ULFM-tolerant halo workload with the failure
/// subsystem armed, prints the recovery counters and gates the outcome
/// via [`bench::KillSoakRun::healthy`]. `--metrics-json` /
/// `--compare-metrics` serialize and gate this run's report (including
/// its `failures` and `critical_path` sections); `--trace-out` /
/// `--explain-msg` export and explain this run's lifecycle trace. Exits
/// 1 on any gate violation, 2 on a malformed schedule.
#[allow(clippy::too_many_arguments)]
fn kill_soak(
    spec: &str,
    ranks: usize,
    shards: usize,
    srq: bool,
    json_path: Option<&String>,
    baseline_path: Option<&String>,
    tolerance: f64,
    trace_out: Option<&String>,
    explain: Option<(usize, u64)>,
) {
    let kills = match parse_kill_spec(spec, ranks) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("bad --kill spec: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "== rank-death soak: {ranks} ranks on {} DES shard(s), SRQ {}, killing {} ==",
        shards.max(1),
        if srq { "on" } else { "off" },
        bench::kill_spec_string(&kills),
    );
    let run = bench::kill_soak_run(ranks, shards, srq, &kills);
    println!(
        "virtual time {:.1} ms | wall {:.1} ms | {} events | fingerprint {:#018x}",
        run.obs.elapsed_ns as f64 / 1e6,
        run.obs.wall_ns as f64 / 1e6,
        run.obs.sim_events,
        run.fingerprint()
    );
    println!(
        "operations: {} completed, {} PeerFailed, {} Revoked, {} corrupted payloads",
        run.ops_ok, run.ops_peer_failed, run.ops_revoked, run.corrupt
    );
    if let Some(f) = &run.obs.failures {
        println!(
            "failure plane: {} kills, {} detected (p99 latency {:.1} us), \
             {} revocation epochs, {} shrink agreement(s), {} dead-peer objects reclaimed",
            f.kills,
            f.detections,
            f.detection_latency_p99_ns as f64 / 1e3,
            f.revokes,
            f.shrinks,
            f.reclaimed
        );
    }
    println!(
        "survivors: {} of {ranks}, shrunk world size {}",
        run.ranks - run.killed.len(),
        run.outs
            .iter()
            .flatten()
            .map(|o| o.sub_size)
            .next()
            .unwrap_or(0)
    );
    match &run.obs.audit {
        Ok(report) => println!("auditor: OK — {report:?}"),
        Err(errors) => {
            println!("auditor: {} invariant violations", errors.len());
            for e in errors.iter().take(20) {
                println!("  {e}");
            }
        }
    }
    let mut bad = false;
    if let Err(violations) = run.healthy() {
        for v in &violations {
            println!("FAIL: {v}");
        }
        bad = true;
    }
    if let Some(path) = trace_out {
        write_trace_json(path, &run.obs.events);
    }
    if let Some((rank, seq)) = explain {
        print!("{}", bench::stitch::explain_msg(&run.obs.events, rank, seq));
    }
    if json_path.is_some() || baseline_path.is_some() {
        let report = bench::metrics_report_json(&run.obs);
        if let Some(path) = json_path {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("metrics report written to {path}");
        }
        if let Some(path) = baseline_path {
            let baseline = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read baseline {path}: {e}");
                    std::process::exit(2);
                }
            };
            match bench::compare_reports_full(&baseline, &report, tolerance) {
                Err(e) => {
                    eprintln!("compare failed: {e}");
                    std::process::exit(2);
                }
                Ok((violations, warnings)) => {
                    for w in &warnings {
                        println!("warning: {w}");
                    }
                    if violations.is_empty() {
                        println!("metrics within {tolerance}% of baseline {path}");
                    } else {
                        println!(
                            "{} metric(s) drifted beyond {tolerance}% of baseline {path}:",
                            violations.len()
                        );
                        for v in &violations {
                            println!("  {v}");
                        }
                        bad = true;
                    }
                }
            }
        }
    }
    if bad {
        std::process::exit(1);
    }
    println!();
}

/// Parse a `--kill` schedule: a comma list of `<after_ops>:<rank>`.
fn parse_kill_spec(spec: &str, ranks: usize) -> Result<Vec<dcfa_mpi::KillSpec>, String> {
    let mut kills = Vec::new();
    for part in spec.split(',') {
        let (after, rank) = part
            .split_once(':')
            .ok_or_else(|| format!("{part:?}: expected <after_ops>:<rank>"))?;
        let after_ops: u64 = after
            .trim()
            .parse()
            .map_err(|_| format!("{part:?}: bad operation count {after:?}"))?;
        let rank: usize = rank
            .trim()
            .parse()
            .map_err(|_| format!("{part:?}: bad rank {rank:?}"))?;
        if !(1..=bench::KILL_SOAK_MAX_AFTER_OPS).contains(&after_ops) {
            return Err(format!(
                "{part:?}: after_ops must be in 1..={} (the soak's phase-1 window)",
                bench::KILL_SOAK_MAX_AFTER_OPS
            ));
        }
        if rank >= ranks {
            return Err(format!(
                "{part:?}: rank {rank} out of range for {ranks} ranks"
            ));
        }
        if kills.iter().any(|k: &dcfa_mpi::KillSpec| k.rank == rank) {
            return Err(format!("{part:?}: rank {rank} killed twice"));
        }
        kills.push(dcfa_mpi::KillSpec { rank, after_ops });
    }
    if kills.is_empty() {
        return Err("empty schedule".into());
    }
    if kills.len() > ranks.saturating_sub(4) {
        return Err(format!(
            "{} kills leave fewer than 4 survivors of {ranks} ranks",
            kills.len()
        ));
    }
    Ok(kills)
}

/// `--chaos [--seed N] [--ranks N]`: one deterministic chaos iteration —
/// sample a kill schedule from the seed, soak it twice (the replay must
/// fingerprint bit-for-bit identically), gate the outcome, and on a
/// failure print the greedily shrunk minimal reproducer in `--kill`
/// syntax. Exits 1 if the schedule surfaced a violation.
fn chaos_fuzz(seed: u64, ranks: usize, shards: usize, srq: bool) {
    println!(
        "== chaos fuzz: seed {seed}, {ranks} ranks on {} DES shard(s), SRQ {} ==",
        shards.max(1),
        if srq { "on" } else { "off" },
    );
    // Print the sampled schedule before running, so a hang (itself a
    // bug the fuzzer exists to find) is attributable to a schedule.
    let schedule = bench::chaos_schedule(seed, ranks);
    println!(
        "schedule ({} kills): {}",
        schedule.len(),
        bench::kill_spec_string(&schedule)
    );
    let report = bench::chaos_run(seed, ranks, shards, srq);
    println!(
        "fingerprint {:#018x} | replay {:#018x} ({}) | {} soak run(s)",
        report.fingerprint,
        report.replay_fingerprint,
        if report.fingerprint == report.replay_fingerprint {
            "bit-for-bit match"
        } else {
            "MISMATCH"
        },
        report.runs
    );
    if report.violations.is_empty() {
        println!("chaos: schedule survived every gate");
        println!();
        return;
    }
    println!("chaos: {} gate violation(s):", report.violations.len());
    for v in &report.violations {
        println!("  {v}");
    }
    if let Some(minimal) = &report.minimal {
        println!(
            "minimal reproducer ({} of {} kills): repro --ranks {ranks} --kill \"{}\"",
            minimal.len(),
            report.schedule.len(),
            bench::kill_spec_string(minimal)
        );
    }
    std::process::exit(1);
}

/// `--faults SPEC [--srq]`: arm the parsed fault plans on the fabric, run
/// the fault-tolerant 4-rank mixed workload (on the SRQ receive pool when
/// `--srq` is given — the permanent CI variant), and report how the
/// faults surfaced: per-rank recovery counters, operation outcomes and
/// the protocol-auditor verdict. Exits nonzero if the auditor finds an
/// invariant violation (the trace tail is dumped for diagnosis).
fn fault_soak(spec: &str, srq: bool) {
    let faults = match fabric::parse_fault_spec(spec) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bad --faults spec: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "== fault soak: {} fault plan(s) armed over the 4-rank mixed run (SRQ {}) ==",
        faults.len(),
        if srq { "on" } else { "off" }
    );
    let soak = bench::fault_soak_run(&ClusterConfig::paper(), &faults, srq);
    println!(
        "operations: {} completed, {} failed with a transport error",
        soak.ops_ok, soak.ops_failed
    );
    for r in &soak.obs.reports {
        let c = &r.comm;
        println!(
            "rank {}: wc faults {}  retries {}  failed {}  reissues {}",
            r.rank, c.wr_faults, c.wr_retries, c.transport_failures, c.handshake_reissues
        );
    }
    match &soak.obs.audit {
        Ok(report) => println!("auditor: OK — {report:?}"),
        Err(errors) => {
            println!("auditor: {} invariant violations", errors.len());
            for e in errors {
                println!("  {e}");
            }
            const TAIL: usize = 60;
            let skip = soak.obs.events.len().saturating_sub(TAIL);
            println!(
                "trace tail ({} of {} events):",
                soak.obs.events.len() - skip,
                soak.obs.events.len()
            );
            for ev in &soak.obs.events[skip..] {
                println!("  {ev:?}");
            }
            std::process::exit(1);
        }
    }
    println!();
}

/// `--daemon-faults SPEC`: arm the parsed control-plane fault plans on
/// the delegation daemons, run the fault-tolerant 4-rank mixed workload
/// (heartbeats and lease reaper live), and report how the chaos
/// surfaced: recovery counters, payload integrity, host-memory balance
/// and the auditor verdict. Exits nonzero if any payload was corrupted,
/// a host twin page leaked, or the auditor found a violation.
fn daemon_fault_soak(spec: &str) {
    let faults = match dcfa::parse_daemon_fault_spec(spec) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bad --daemon-faults spec: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "== daemon chaos soak: {} control-plane fault plan(s) armed over the 4-rank mixed run ==",
        faults.len()
    );
    let soak = bench::daemon_fault_soak_run(&ClusterConfig::paper(), &faults);
    println!(
        "operations: {} completed, {} failed with a transport error, {} corrupted payloads",
        soak.ops_ok, soak.ops_failed, soak.payload_errors
    );
    if let Some(d) = &soak.obs.daemon {
        println!(
            "control plane: {} crashes / {} respawns, {} cmd timeouts, {} retries, \
             {} reply replays, {} reattaches ({} MRs adopted), {} leases reclaimed, {} heartbeats",
            d.daemon_crashes,
            d.daemon_respawns,
            d.cmd_timeouts,
            d.cmd_retries,
            d.reply_replays,
            d.reattaches,
            d.mrs_adopted,
            d.leases_reclaimed,
            d.heartbeats,
        );
    }
    let mut bad = soak.payload_errors > 0;
    for (node, before, after) in &soak.mem_balance {
        if before != after {
            println!("node {node}: host pages LEAKED ({before} B -> {after} B)");
            bad = true;
        } else {
            println!("node {node}: host pages balanced ({before} B)");
        }
    }
    match &soak.obs.audit {
        Ok(report) => println!("auditor: OK — {report:?}"),
        Err(errors) => {
            println!("auditor: {} invariant violations", errors.len());
            for e in errors {
                println!("  {e}");
            }
            const TAIL: usize = 60;
            let skip = soak.obs.events.len().saturating_sub(TAIL);
            println!(
                "trace tail ({} of {} events):",
                soak.obs.events.len() - skip,
                soak.obs.events.len()
            );
            for ev in &soak.obs.events[skip..] {
                println!("  {ev:?}");
            }
            bad = true;
        }
    }
    if bad {
        std::process::exit(1);
    }
    println!();
}

/// `--stats` / `--trace` / `--trace-out` / `--explain-msg` (without
/// `--kill`): run the traced 4-rank mixed-protocol workload and report
/// counters, fabric utilization, the event-ring tail and the
/// protocol-auditor verdict, export the Perfetto trace, or explain one
/// message's causal timeline.
fn observability(
    show_stats: bool,
    show_trace: bool,
    trace_out: Option<&String>,
    explain: Option<(usize, u64)>,
) {
    let run = bench::observability_run(&ClusterConfig::paper());
    if show_stats {
        println!("== per-rank protocol & cache counters (traced 4-rank mixed run) ==");
        for r in &run.reports {
            println!("{r}");
        }
        println!(
            "trace ring: {} events captured, {} dropped",
            run.events.len(),
            run.dropped
        );
        if let Some(d) = &run.daemon {
            println!(
                "dcfa daemons: {} connections, {} commands ({} reg / {} dereg MR, {} reg / {} dereg offload, {} errors)",
                d.connections,
                d.commands,
                d.mr_registered,
                d.mr_deregistered,
                d.offload_registered,
                d.offload_deregistered,
                d.errors,
            );
            println!(
                "dcfa control: {} cmd timeouts, {} retries, {} reply replays, \
                 {} crashes / {} respawns, {} reattaches, {} leases reclaimed, {} heartbeats",
                d.cmd_timeouts,
                d.cmd_retries,
                d.reply_replays,
                d.daemon_crashes,
                d.daemon_respawns,
                d.reattaches,
                d.leases_reclaimed,
                d.heartbeats,
            );
        }
        println!("fabric channels:");
        for f in &run.fabric {
            println!("{f}");
        }
        let phases = run.metrics.merged_by_phase();
        if !phases.is_empty() {
            println!("latency percentiles (virtual ns, all ranks merged):");
            println!(
                "{:>14} {:>8} {:>12} {:>12} {:>12} {:>12}",
                "phase", "samples", "p50", "p90", "p99", "max"
            );
            for (phase, s) in &phases {
                println!(
                    "{:>14} {:>8} {:>12.0} {:>12.0} {:>12.0} {:>12}",
                    phase.name(),
                    s.count,
                    s.p50(),
                    s.p90(),
                    s.p99(),
                    s.max
                );
            }
        }
    }
    if show_trace {
        const TAIL: usize = 40;
        let skip = run.events.len().saturating_sub(TAIL);
        println!(
            "== protocol event trace: last {} of {} events ({} dropped by ring) ==",
            run.events.len() - skip,
            run.events.len(),
            run.dropped
        );
        for ev in &run.events[skip..] {
            println!("  {ev:?}");
        }
    }
    if let Some(path) = trace_out {
        write_trace_json(path, &run.events);
    }
    if let Some((rank, seq)) = explain {
        print!("{}", bench::stitch::explain_msg(&run.events, rank, seq));
    }
    match &run.audit {
        Ok(report) => println!("auditor: OK — {report:?}"),
        Err(errors) => {
            println!("auditor: {} invariant violations", errors.len());
            for e in errors {
                println!("  {e}");
            }
        }
    }
    println!();
}

/// Export a traced run as Perfetto trace-event JSON, self-validating the
/// output against the trace-event schema before writing — CI relies on
/// this instead of a separate validator command. Exits 1 if the export
/// fails its own validation (an exporter bug), 2 if the file cannot be
/// written.
fn write_trace_json(path: &str, events: &[dcfa_mpi::TraceEvent]) {
    let out = bench::stitch::trace_json(events);
    let stats = match bench::stitch::validate_trace_json(&out) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace export failed schema self-validation: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    }
    println!(
        "perfetto trace written to {path}: {} records ({} slices, {} flow pairs, {} tracks) — \
         load it at https://ui.perfetto.dev",
        stats.events, stats.slices, stats.flows, stats.tracks
    );
}

/// `--metrics-json PATH` / `--compare-metrics BASELINE`: run the profiled
/// 4-rank mixed workload, serialize its latency histograms as the
/// versioned JSON report, optionally write it to PATH, and optionally
/// gate it against a saved baseline. Exits 1 on a drift violation, 2 when
/// a report cannot be read or parsed.
fn metrics_report(json_path: Option<&String>, baseline_path: Option<&String>, tolerance: f64) {
    let faults_before = minor_faults();
    let run = bench::observability_run(&ClusterConfig::paper());
    if std::env::var_os("SIM_PROFILE").is_some() {
        eprintln!(
            "SIM_PROFILE: minor faults during run: {}",
            minor_faults() - faults_before
        );
    }
    if let Err(errors) = &run.audit {
        println!(
            "auditor: {} invariant violations in the profiled run",
            errors.len()
        );
        for e in errors {
            println!("  {e}");
        }
        std::process::exit(1);
    }
    let report = bench::metrics_report_json(&run);
    let wall_secs = run.wall_ns as f64 / 1e9;
    println!(
        "wall clock: {:.1} ms  |  {} events ({:.0} events/s)  |  {} ops ({:.0} ops/s)",
        run.wall_ns as f64 / 1e6,
        run.sim_events,
        run.sim_events as f64 / wall_secs.max(1e-12),
        run.mpi_ops,
        run.mpi_ops as f64 / wall_secs.max(1e-12),
    );
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!(
            "metrics report written to {path} ({} phases, {} histograms)",
            run.metrics.merged_by_phase().len(),
            run.metrics.snapshot().len()
        );
    }
    if let Some(path) = baseline_path {
        let baseline = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        match bench::compare_reports_full(&baseline, &report, tolerance) {
            Err(e) => {
                eprintln!("compare failed: {e}");
                std::process::exit(2);
            }
            Ok((violations, warnings)) => {
                for w in &warnings {
                    println!("warning: {w}");
                }
                if violations.is_empty() {
                    println!("metrics within {tolerance}% of baseline {path}");
                } else {
                    println!(
                        "{} metric(s) drifted beyond {tolerance}% of baseline {path}:",
                        violations.len()
                    );
                    for v in &violations {
                        println!("  {v}");
                    }
                    std::process::exit(1);
                }
            }
        }
    }
    println!();
}
