//! Minimal JSON reader/writer for the metrics report (`repro
//! --metrics-json` / `--compare-metrics`). Hand-rolled on purpose: the
//! workspace vendors no JSON crate, and the report schema is small enough
//! that a ~150-line recursive-descent parser is cheaper than a dependency.
//!
//! Supported: objects, arrays, strings (with `\uXXXX` escapes), numbers
//! (as `f64` — every value the report emits fits losslessly or is already
//! a float), booleans and `null`. Not supported (and not emitted):
//! duplicate-key semantics beyond last-wins.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects use a `BTreeMap` so re-serialization is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Escape and quote a string for JSON output.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a float the way the report writes numbers: integers without a
/// fraction, everything else via Rust's shortest round-trip formatting.
pub fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no Inf/NaN; the report never produces them, but guard
        // anyway so a bug degrades to null instead of invalid output.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Parse a complete JSON document. Returns a message describing the first
/// syntax error (with byte offset) on malformed input.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not emitted by the report;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_report_shaped_document() {
        let doc = r#"{
            "schema": "dcfa-mpi-metrics/1",
            "elapsed_ns": 1234567,
            "bandwidth_gbs": 1.25e0,
            "offload_threshold": null,
            "ok": true,
            "phases": [
                {"phase": "Eager", "p99_ns": 4096.5, "buckets": [[3, 17], [4, 2]]}
            ]
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some("dcfa-mpi-metrics/1")
        );
        assert_eq!(
            v.get("elapsed_ns").and_then(JsonValue::as_f64),
            Some(1_234_567.0)
        );
        assert_eq!(v.get("offload_threshold"), Some(&JsonValue::Null));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        let phases = v.get("phases").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(
            phases[0].get("p99_ns").and_then(JsonValue::as_f64),
            Some(4096.5)
        );
        let buckets = phases[0]
            .get("buckets")
            .and_then(JsonValue::as_arr)
            .unwrap();
        assert_eq!(buckets[0].as_arr().unwrap()[1].as_f64(), Some(17.0));
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn numbers_round_trip() {
        for v in [0.0, 1.0, -3.0, 0.5, 1.25e9, 123456789.0, 0.001] {
            let mut out = String::new();
            write_num(&mut out, v);
            assert_eq!(parse(&out).unwrap().as_f64(), Some(v), "value {v}");
        }
        // Non-finite degrades to null rather than invalid JSON.
        let mut out = String::new();
        write_num(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
