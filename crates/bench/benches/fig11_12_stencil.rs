//! Figures 11/12 bench: the five-point stencil across the three runtimes
//! (reduced grid so criterion iterations stay fast; the full 1282-point
//! sweep is `repro fig11 fig12`).

use apps::{stencil_dcfa, stencil_intel_phi, stencil_offload, StencilParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcfa_mpi::MpiConfig;
use fabric::ClusterConfig;

fn bench(c: &mut Criterion) {
    let ccfg = ClusterConfig::paper();
    let mut g = c.benchmark_group("fig11_12_stencil");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    let p = StencilParams {
        n: 258,
        iters: 5,
        procs: 4,
        threads: 16,
    };
    g.bench_with_input(BenchmarkId::new("dcfa", "4x16"), &p, |b, &p| {
        b.iter(|| stencil_dcfa(&ccfg, MpiConfig::dcfa(), p))
    });
    g.bench_with_input(BenchmarkId::new("intel_phi", "4x16"), &p, |b, &p| {
        b.iter(|| stencil_intel_phi(&ccfg, p))
    });
    g.bench_with_input(BenchmarkId::new("xeon_offload", "4x16"), &p, |b, &p| {
        b.iter(|| stencil_offload(&ccfg, p))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
