//! Figure 9 bench: blocking ping-pong, DCFA-MPI vs Intel-MPI-on-Phi.

use apps::{mpi_pingpong_blocking, MpiRuntime};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcfa_mpi::MpiConfig;
use fabric::ClusterConfig;

fn bench(c: &mut Criterion) {
    let ccfg = ClusterConfig::paper();
    let mut g = c.benchmark_group("fig09_vs_intelphi");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for (name, rt) in [
        ("dcfa", MpiRuntime::Dcfa(MpiConfig::dcfa())),
        ("intel_phi", MpiRuntime::IntelPhi),
    ] {
        for size in [4u64, 1 << 20] {
            g.bench_with_input(
                BenchmarkId::new(name, size),
                &(&rt, size),
                |b, (rt, size)| b.iter(|| mpi_pingpong_blocking(&ccfg, rt, *size, 6)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
