//! Figure 10 bench: communication-only application, DCFA-MPI vs the
//! Xeon+offload mode.

use apps::{commonly_dcfa, commonly_offload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcfa_mpi::MpiConfig;
use fabric::ClusterConfig;

fn bench(c: &mut Criterion) {
    let ccfg = ClusterConfig::paper();
    let mut g = c.benchmark_group("fig10_commonly");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for size in [64u64, 512 << 10] {
        g.bench_with_input(BenchmarkId::new("dcfa", size), &size, |b, &s| {
            b.iter(|| commonly_dcfa(&ccfg, MpiConfig::dcfa(), s, 6))
        });
        g.bench_with_input(BenchmarkId::new("xeon_offload", size), &size, |b, &s| {
            b.iter(|| commonly_offload(&ccfg, s, 6))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
