//! Ablation benches for the design choices DESIGN.md §6 calls out:
//! offloading-send-buffer threshold, the MR cache pool, the eager
//! threshold and rendezvous-flavour timing skew.

use bench::{
    ablation_eager_threshold, ablation_host_staged_bcast, ablation_mr_cache,
    ablation_offload_threshold, ablation_rndv_skew,
};
use criterion::{criterion_group, criterion_main, Criterion};
use fabric::ClusterConfig;

fn bench(c: &mut Criterion) {
    let ccfg = ClusterConfig::paper();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("offload_threshold_sweep_256k", |b| {
        b.iter(|| ablation_offload_threshold(&ccfg, 256 << 10))
    });
    g.bench_function("mr_cache_on_off_1m", |b| {
        b.iter(|| ablation_mr_cache(&ccfg, 1 << 20))
    });
    g.bench_function("eager_threshold_sweep_8k", |b| {
        b.iter(|| ablation_eager_threshold(&ccfg, 8 << 10))
    });
    g.bench_function("rndv_skew_512k", |b| {
        b.iter(|| ablation_rndv_skew(&ccfg, 512 << 10))
    });
    g.bench_function("host_staged_bcast_2m", |b| {
        b.iter(|| ablation_host_staged_bcast(&ccfg, 2 << 20))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
