//! Figures 7/8 bench: non-blocking exchange with/without the offloading
//! send buffer and on the host.

use apps::{mpi_pingpong_nonblocking, MpiRuntime};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcfa_mpi::MpiConfig;
use fabric::ClusterConfig;

fn bench(c: &mut Criterion) {
    let ccfg = ClusterConfig::paper();
    let mut g = c.benchmark_group("fig07_08_offload");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    let cases = [
        ("dcfa_offload", MpiRuntime::Dcfa(MpiConfig::dcfa())),
        (
            "dcfa_no_offload",
            MpiRuntime::Dcfa(MpiConfig::dcfa_no_offload()),
        ),
        ("host", MpiRuntime::Dcfa(MpiConfig::host())),
    ];
    for (name, rt) in &cases {
        for size in [4096u64, 1 << 20] {
            g.bench_with_input(
                BenchmarkId::new(*name, size),
                &(rt, size),
                |b, (rt, size)| b.iter(|| mpi_pingpong_nonblocking(&ccfg, rt, *size, 4)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
