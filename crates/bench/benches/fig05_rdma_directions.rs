//! Figure 5 bench: RDMA-write ping-pong in the four direction pairs.
//! Criterion measures the wall-clock of running one deterministic
//! simulation; the *virtual-time* results are printed by `repro fig5`.

use apps::{rdma_direction, Direction};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fabric::ClusterConfig;

fn bench(c: &mut Criterion) {
    let ccfg = ClusterConfig::paper();
    let mut g = c.benchmark_group("fig05_rdma_directions");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for dir in Direction::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(dir.label()), &dir, |b, &dir| {
            b.iter(|| rdma_direction(&ccfg, dir, 1 << 20, 4));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
