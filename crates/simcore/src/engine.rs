//! The discrete-event engine and its cooperative process model.
//!
//! # Execution model
//!
//! Every simulated process is an OS thread, but **exactly one** of them runs
//! at any moment: the engine wakes a process, then parks itself until that
//! process either blocks (via a [`Ctx`] call) or finishes. All events with
//! equal timestamps fire in schedule order. The result is a fully
//! deterministic simulation in which process code is ordinary imperative
//! Rust — device models charge virtual time, processes wait on completions.
//!
//! # Wake correctness
//!
//! Each block operation increments the process's *block epoch*; wake events
//! carry the epoch they target. A stale wake (the process already continued
//! for another reason, or finished) is dropped. This makes spurious wakes
//! impossible by construction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::error::{BlockedProc, SimError};
use crate::sync::{CompletionInner, EventInner};
use crate::time::{SimDuration, SimTime};

/// Identifier of a simulated process, dense from zero in spawn order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

/// A wake targets a specific block epoch; see module docs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WakeTarget {
    pub pid: ProcId,
    pub epoch: u64,
}

pub(crate) enum EventKind {
    Wake(WakeTarget),
    Call(Box<dyn FnOnce(&Scheduler) + Send>),
}

struct ScheduledEvent {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}
impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcStatus {
    /// Not yet started or currently blocked.
    Blocked,
    Running,
    Finished,
}

enum Resume {
    Go,
    Abort,
}

enum Park {
    Blocked(ProcId),
    Finished(ProcId),
    Panicked(ProcId, String),
}

struct ProcSlot {
    name: String,
    status: ProcStatus,
    /// Daemon processes (servers that block forever waiting for requests)
    /// don't keep the simulation alive and don't count as deadlocked.
    daemon: bool,
    /// Incremented each time the process blocks; wakes must match.
    epoch: u64,
    /// Human-readable reason recorded at the blocking call site.
    block_reason: &'static str,
    resume_tx: Sender<Resume>,
    join: Option<JoinHandle<()>>,
}

/// Installed trace hook.
type TraceHook = Box<dyn Fn(SimTime, &str) + Send>;

pub(crate) struct EngineState {
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Reverse<ScheduledEvent>>,
    procs: Vec<ProcSlot>,
    live: usize,
    events_processed: u64,
    event_limit: u64,
    trace: Option<TraceHook>,
}

impl EngineState {
    pub(crate) fn schedule(&mut self, time: SimTime, kind: EventKind) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(ScheduledEvent { time, seq, kind }));
    }

    fn trace(&self, msg: &str) {
        if let Some(t) = &self.trace {
            t(self.now, msg);
        }
    }
}

struct Shared {
    state: Mutex<EngineState>,
    park_tx: Sender<Park>,
}

/// Handle for scheduling future work; clonable and usable from process code
/// and from device callbacks alike.
#[derive(Clone)]
pub struct Scheduler {
    shared: Arc<Shared>,
}

impl Scheduler {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.state.lock().now
    }

    /// Run `f` at virtual time `t` (engine context, no process running).
    pub fn call_at<F>(&self, t: SimTime, f: F)
    where
        F: FnOnce(&Scheduler) + Send + 'static,
    {
        let mut st = self.shared.state.lock();
        let t = t.max(st.now);
        st.schedule(t, EventKind::Call(Box::new(f)));
    }

    /// Run `f` after `d` virtual time.
    pub fn call_after<F>(&self, d: SimDuration, f: F)
    where
        F: FnOnce(&Scheduler) + Send + 'static,
    {
        let mut st = self.shared.state.lock();
        let t = st.now + d;
        st.schedule(t, EventKind::Call(Box::new(f)));
    }

    /// Emit a trace line through the installed trace hook, if any.
    pub fn trace(&self, msg: &str) {
        self.shared.state.lock().trace(msg);
    }

    /// Whether a trace hook is installed (lets hot paths skip formatting).
    pub fn has_trace(&self) -> bool {
        self.shared.state.lock().trace.is_some()
    }

    /// Spawn a new simulated process; it becomes runnable at the current
    /// virtual time.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        spawn_inner(&self.shared, name.into(), false, f)
    }

    /// Spawn a daemon process: a server that may block forever without
    /// keeping the simulation alive or counting as deadlocked.
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        spawn_inner(&self.shared, name.into(), true, f)
    }

    pub(crate) fn wake_at(&self, t: SimTime, target: WakeTarget) {
        let mut st = self.shared.state.lock();
        let t = t.max(st.now);
        st.schedule(t, EventKind::Wake(target));
    }
}

/// Per-process context passed to process closures. All blocking operations
/// of the simulation go through this handle.
pub struct Ctx {
    pid: ProcId,
    scheduler: Scheduler,
    resume_rx: Receiver<Resume>,
}

/// Internal marker used to unwind aborted process threads quietly.
struct AbortMarker;

impl Ctx {
    /// This process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now()
    }

    /// A clonable scheduler handle for device models.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler.clone()
    }

    /// Emit a trace line (no-op unless a trace hook is installed).
    pub fn trace(&self, msg: &str) {
        self.scheduler.trace(msg);
    }

    /// Whether a trace hook is installed.
    pub fn has_trace(&self) -> bool {
        self.scheduler.has_trace()
    }

    /// Spawn a sibling process, runnable at the current virtual time.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.scheduler.spawn(name, f)
    }

    /// Advance this process's virtual clock by `d` (models compute or fixed
    /// software overhead).
    pub fn sleep(&mut self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        {
            let mut st = self.scheduler.shared.state.lock();
            let t = st.now + d;
            // Fast-forward: while this process runs, no other thread can
            // mutate the scheduler (every other process is parked and the
            // engine thread is waiting for our park), so if our wake
            // would sort before everything queued, parking would only
            // make the engine pop it straight back to us. Advance the
            // clock inline instead and skip both thread handoffs — the
            // event still counts, identically to the two-hop path. A
            // queued event at the same instant wins (it holds an earlier
            // sequence number), exactly as in the two-hop path.
            if st.events_processed < st.event_limit
                && st.queue.peek().is_none_or(|Reverse(h)| t < h.time)
            {
                st.now = t;
                st.events_processed += 1;
                return;
            }
            let slot = &mut st.procs[self.pid.0];
            slot.epoch += 1;
            slot.block_reason = "sleep";
            let epoch = slot.epoch;
            st.schedule(
                t,
                EventKind::Wake(WakeTarget {
                    pid: self.pid,
                    epoch,
                }),
            );
        }
        self.park();
    }

    /// Yield the processor: requeue after every event already scheduled at
    /// the current instant.
    pub fn yield_now(&mut self) {
        {
            let mut st = self.scheduler.shared.state.lock();
            let now = st.now;
            // Fast-forward (see `sleep`): with nothing else queued at the
            // current instant the yield is a no-op — requeueing would
            // bounce straight back through the engine thread.
            if st.events_processed < st.event_limit
                && st.queue.peek().is_none_or(|Reverse(h)| now < h.time)
            {
                st.events_processed += 1;
                return;
            }
            let slot = &mut st.procs[self.pid.0];
            slot.epoch += 1;
            slot.block_reason = "yield";
            let epoch = slot.epoch;
            st.schedule(
                now,
                EventKind::Wake(WakeTarget {
                    pid: self.pid,
                    epoch,
                }),
            );
        }
        self.park();
    }

    /// Block until the completion is signalled. Returns immediately if it
    /// already is.
    pub fn wait(&mut self, c: &crate::sync::Completion) {
        self.wait_reason(c, "completion");
    }

    /// Like [`Ctx::wait`] but records `reason` for deadlock diagnostics.
    pub fn wait_reason(&mut self, c: &crate::sync::Completion, reason: &'static str) {
        loop {
            let registered = {
                let mut st = self.scheduler.shared.state.lock();
                let mut inner = c.inner().lock();
                if inner.done {
                    return;
                }
                let slot = &mut st.procs[self.pid.0];
                slot.epoch += 1;
                slot.block_reason = reason;
                inner.waiters.push(WakeTarget {
                    pid: self.pid,
                    epoch: slot.epoch,
                });
                true
            };
            debug_assert!(registered);
            self.park();
        }
    }

    /// Block until the event's epoch differs from `seen`. Returns the new
    /// epoch. The standard condition-polling pattern is:
    ///
    /// ```ignore
    /// loop {
    ///     let seen = ev.epoch();
    ///     if condition() { break; }
    ///     ctx.wait_event(&ev, seen, "why");
    /// }
    /// ```
    pub fn wait_event(
        &mut self,
        ev: &crate::sync::SimEvent,
        seen: u64,
        reason: &'static str,
    ) -> u64 {
        loop {
            {
                let mut st = self.scheduler.shared.state.lock();
                let mut inner = ev.inner().lock();
                if inner.epoch != seen {
                    return inner.epoch;
                }
                let slot = &mut st.procs[self.pid.0];
                slot.epoch += 1;
                slot.block_reason = reason;
                inner.waiters.push(WakeTarget {
                    pid: self.pid,
                    epoch: slot.epoch,
                });
            }
            self.park();
        }
    }

    /// Like [`Ctx::wait_event`] but gives up at virtual time `deadline`:
    /// returns the new epoch if the event fired, or `seen` unchanged on
    /// timeout. Both the event waiter and a deadline wake are registered
    /// with the same block epoch, so whichever fires second is dropped as
    /// stale by the engine — a timed-out waiter can never be woken twice.
    pub fn wait_event_until(
        &mut self,
        ev: &crate::sync::SimEvent,
        seen: u64,
        deadline: SimTime,
        reason: &'static str,
    ) -> u64 {
        loop {
            {
                let mut st = self.scheduler.shared.state.lock();
                let mut inner = ev.inner().lock();
                if inner.epoch != seen {
                    return inner.epoch;
                }
                if st.now >= deadline {
                    return seen;
                }
                let slot = &mut st.procs[self.pid.0];
                slot.epoch += 1;
                slot.block_reason = reason;
                let target = WakeTarget {
                    pid: self.pid,
                    epoch: slot.epoch,
                };
                inner.waiters.push(target);
                st.schedule(deadline, EventKind::Wake(target));
            }
            self.park();
        }
    }

    fn park(&mut self) {
        if profile_enabled() {
            LAST_RESUME.with(|c| {
                if let Some(t) = c.take() {
                    PROFILE_ACTIVE_NS.fetch_add(
                        t.elapsed().as_nanos() as u64,
                        std::sync::atomic::Ordering::Relaxed,
                    );
                }
            });
        }
        // Direct handoff: while this thread runs, the engine thread sits
        // blocked waiting for our park, so bouncing control through it
        // costs two thread switches per event. If the next event is a
        // plain wake of a parked process, deliver it from here: pop it,
        // mark the target running and resume it directly — or, when the
        // wake targets this very process, just keep running with no
        // switch at all. Device callbacks (`Call`), an exhausted event
        // budget, an empty queue (run end / deadlock detection) and
        // process exit still go through the engine thread, which keeps
        // sole authority over run termination and error reporting.
        enum Hand {
            SelfResume,
            Direct(Sender<Resume>),
            Engine,
        }
        let hand = {
            let mut st = self.scheduler.shared.state.lock();
            st.procs[self.pid.0].status = ProcStatus::Blocked;
            loop {
                if st.events_processed >= st.event_limit {
                    // Let the engine thread pop the offending event and
                    // report `SimError::EventLimit`.
                    break Hand::Engine;
                }
                let target = match st.queue.peek() {
                    Some(Reverse(ev)) => match ev.kind {
                        EventKind::Wake(t) => t,
                        EventKind::Call(_) => break Hand::Engine,
                    },
                    None => break Hand::Engine,
                };
                let Some(Reverse(ev)) = st.queue.pop() else {
                    unreachable!("peeked event vanished under the state lock")
                };
                debug_assert!(ev.time >= st.now);
                st.now = ev.time;
                st.events_processed += 1;
                let slot = &mut st.procs[target.pid.0];
                if slot.status != ProcStatus::Blocked || slot.epoch != target.epoch {
                    continue; // stale wake, skipped exactly like the engine loop
                }
                slot.status = ProcStatus::Running;
                if target.pid == self.pid {
                    break Hand::SelfResume;
                }
                break Hand::Direct(slot.resume_tx.clone());
            }
        };
        match hand {
            Hand::SelfResume => {
                if profile_enabled() {
                    LAST_RESUME.with(|c| c.set(Some(std::time::Instant::now())));
                }
                return;
            }
            Hand::Direct(tx) => {
                tx.send(Resume::Go).expect("process thread gone");
            }
            Hand::Engine => {
                self.scheduler
                    .shared
                    .park_tx
                    .send(Park::Blocked(self.pid))
                    .expect("engine gone while parking");
            }
        }
        match self.resume_rx.recv() {
            Ok(Resume::Go) => {}
            // resume_unwind skips the panic hook: teardown stays quiet.
            Ok(Resume::Abort) | Err(_) => std::panic::resume_unwind(Box::new(AbortMarker)),
        }
        if profile_enabled() {
            LAST_RESUME.with(|c| c.set(Some(std::time::Instant::now())));
        }
    }
}

static PROFILE_ACTIVE_NS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
thread_local! {
    static LAST_RESUME: std::cell::Cell<Option<std::time::Instant>> =
        const { std::cell::Cell::new(None) };
}
fn profile_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("SIM_PROFILE").is_some())
}

/// Outcome of a completed run.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// Virtual time of the last processed event.
    pub final_time: SimTime,
    /// Total events processed.
    pub events_processed: u64,
}

/// A deterministic discrete-event simulation.
pub struct Simulation {
    shared: Arc<Shared>,
    park_rx: Receiver<Park>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

fn spawn_inner<F>(shared: &Arc<Shared>, name: String, daemon: bool, f: F) -> ProcId
where
    F: FnOnce(&mut Ctx) + Send + 'static,
{
    let (resume_tx, resume_rx) = unbounded();
    let pid;
    {
        let mut st = shared.state.lock();
        pid = ProcId(st.procs.len());
        st.procs.push(ProcSlot {
            name: name.clone(),
            status: ProcStatus::Blocked,
            daemon,
            epoch: 0,
            block_reason: "start",
            resume_tx,
            join: None,
        });
        if !daemon {
            st.live += 1;
        }
        let now = st.now;
        st.schedule(now, EventKind::Wake(WakeTarget { pid, epoch: 0 }));
    }
    let mut ctx = Ctx {
        pid,
        scheduler: Scheduler {
            shared: shared.clone(),
        },
        resume_rx,
    };
    let park_tx = shared.park_tx.clone();
    let handle = std::thread::Builder::new()
        .name(format!("sim:{name}"))
        .spawn(move || {
            // Wait for the first wake before touching anything.
            match ctx.resume_rx.recv() {
                Ok(Resume::Go) => {}
                Ok(Resume::Abort) | Err(_) => return,
            }
            let result = catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
            match result {
                Ok(()) => {
                    let _ = park_tx.send(Park::Finished(pid));
                }
                Err(payload) => {
                    if payload.downcast_ref::<AbortMarker>().is_some() {
                        // Quiet teardown; engine is gone or aborting us.
                        return;
                    }
                    let msg = panic_message(payload.as_ref());
                    let _ = park_tx.send(Park::Panicked(pid, msg));
                }
            }
        })
        .expect("failed to spawn sim process thread");
    shared.state.lock().procs[pid.0].join = Some(handle);
    pid
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Simulation {
    pub fn new() -> Self {
        let (park_tx, park_rx) = unbounded();
        let shared = Arc::new(Shared {
            state: Mutex::new(EngineState {
                now: SimTime::ZERO,
                next_seq: 0,
                queue: BinaryHeap::new(),
                procs: Vec::new(),
                live: 0,
                events_processed: 0,
                event_limit: u64::MAX,
                trace: None,
            }),
            park_tx,
        });
        Simulation { shared, park_rx }
    }

    /// Install a trace hook invoked by [`Ctx::trace`] / [`Scheduler::trace`].
    pub fn set_trace(&self, hook: impl Fn(SimTime, &str) + Send + 'static) {
        self.shared.state.lock().trace = Some(Box::new(hook));
    }

    /// Cap the number of processed events (livelock guard for tests).
    pub fn set_event_limit(&self, limit: u64) {
        self.shared.state.lock().event_limit = limit;
    }

    /// Scheduler handle for constructing device models before `run`.
    pub fn scheduler(&self) -> Scheduler {
        Scheduler {
            shared: self.shared.clone(),
        }
    }

    /// Spawn a root process; it becomes runnable at t=0 (or the current time
    /// if the simulation already ran).
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        spawn_inner(&self.shared, name.into(), false, f)
    }

    /// Spawn a daemon process (see [`Scheduler::spawn_daemon`]).
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        spawn_inner(&self.shared, name.into(), true, f)
    }

    /// Run until the event queue drains and every process has finished.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        let profile = std::env::var_os("SIM_PROFILE").is_some();
        let mut calls = 0u64;
        let mut call_ns = 0u64;
        let mut wakes = 0u64;
        let mut wake_ns = 0u64;
        let t_run = std::time::Instant::now();
        loop {
            let ev = {
                let mut st = self.shared.state.lock();
                match st.queue.pop() {
                    Some(Reverse(ev)) => {
                        debug_assert!(ev.time >= st.now);
                        st.now = ev.time;
                        st.events_processed += 1;
                        if st.events_processed > st.event_limit {
                            return Err(SimError::EventLimit {
                                limit: st.event_limit,
                                at: st.now,
                            });
                        }
                        Some(ev)
                    }
                    None => None,
                }
            };
            let Some(ev) = ev else {
                let st = self.shared.state.lock();
                if st.live == 0 {
                    if profile {
                        eprintln!(
                            "SIM_PROFILE: total {:.1}ms | {} calls {:.1}ms | {} wakes {:.1}ms | proc-active {:.1}ms",
                            t_run.elapsed().as_secs_f64() * 1e3,
                            calls,
                            call_ns as f64 / 1e6,
                            wakes,
                            wake_ns as f64 / 1e6,
                            PROFILE_ACTIVE_NS.load(std::sync::atomic::Ordering::Relaxed) as f64
                                / 1e6,
                        );
                    }
                    return Ok(RunReport {
                        final_time: st.now,
                        events_processed: st.events_processed,
                    });
                }
                let blocked = st
                    .procs
                    .iter()
                    .filter(|p| p.status == ProcStatus::Blocked && !p.daemon)
                    .map(|p| BlockedProc {
                        name: p.name.clone(),
                        reason: p.block_reason.to_string(),
                    })
                    .collect();
                return Err(SimError::Deadlock {
                    at: st.now,
                    blocked,
                });
            };
            match ev.kind {
                EventKind::Call(f) => {
                    let t0 = std::time::Instant::now();
                    let sched = self.scheduler();
                    f(&sched);
                    calls += 1;
                    call_ns += t0.elapsed().as_nanos() as u64;
                }
                EventKind::Wake(target) => {
                    let t0 = std::time::Instant::now();
                    let resume_tx = {
                        let mut st = self.shared.state.lock();
                        let slot = &mut st.procs[target.pid.0];
                        if slot.status != ProcStatus::Blocked || slot.epoch != target.epoch {
                            continue; // stale wake
                        }
                        slot.status = ProcStatus::Running;
                        slot.resume_tx.clone()
                    };
                    resume_tx.send(Resume::Go).expect("process thread gone");
                    let parked = self.park_rx.recv().expect("all process threads gone");
                    wakes += 1;
                    wake_ns += t0.elapsed().as_nanos() as u64;
                    match parked {
                        Park::Blocked(pid) => {
                            self.shared.state.lock().procs[pid.0].status = ProcStatus::Blocked;
                        }
                        Park::Finished(pid) => {
                            let mut st = self.shared.state.lock();
                            st.procs[pid.0].status = ProcStatus::Finished;
                            if !st.procs[pid.0].daemon {
                                st.live -= 1;
                            }
                        }
                        Park::Panicked(pid, message) => {
                            let name = {
                                let mut st = self.shared.state.lock();
                                st.procs[pid.0].status = ProcStatus::Finished;
                                if !st.procs[pid.0].daemon {
                                    st.live -= 1;
                                }
                                st.procs[pid.0].name.clone()
                            };
                            return Err(SimError::ProcessPanic { name, message });
                        }
                    }
                }
            }
        }
    }

    /// Convenience: run and panic with a readable message on failure.
    pub fn run_expect(&mut self) -> RunReport {
        match self.run() {
            Ok(r) => r,
            Err(e) => panic!("simulation failed: {e}"),
        }
    }

    /// Name of a process (for diagnostics).
    pub fn proc_name(&self, pid: ProcId) -> String {
        self.shared.state.lock().procs[pid.0].name.clone()
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // Abort any still-parked process threads so their stacks unwind and
        // the threads exit; then join them.
        let mut handles = Vec::new();
        {
            let mut st = self.shared.state.lock();
            for slot in st.procs.iter_mut() {
                if slot.status != ProcStatus::Finished {
                    let _ = slot.resume_tx.send(Resume::Abort);
                }
                if let Some(h) = slot.join.take() {
                    handles.push(h);
                }
            }
        }
        for h in handles {
            let _ = h.join();
        }
    }
}

// Internal plumbing shared with sync.rs.
pub(crate) fn fire_completion(sched: &Scheduler, inner: &Mutex<CompletionInner>) {
    let waiters = {
        let mut c = inner.lock();
        if c.done {
            return;
        }
        c.done = true;
        std::mem::take(&mut c.waiters)
    };
    let now = sched.now();
    for w in waiters {
        sched.wake_at(now, w);
    }
}

pub(crate) fn fire_event(sched: &Scheduler, inner: &Mutex<EventInner>) {
    let waiters = {
        let mut e = inner.lock();
        e.epoch += 1;
        std::mem::take(&mut e.waiters)
    };
    let now = sched.now();
    for w in waiters {
        sched.wake_at(now, w);
    }
}
