//! The discrete-event engine and its cooperative process model.
//!
//! # Execution model
//!
//! Every simulated process is an OS thread, but **exactly one** of them runs
//! at any moment: the engine wakes a process, then parks itself until that
//! process either blocks (via a [`Ctx`] call) or finishes. All events with
//! equal timestamps fire in schedule order. The result is a fully
//! deterministic simulation in which process code is ordinary imperative
//! Rust — device models charge virtual time, processes wait on completions.
//!
//! # Wake correctness
//!
//! Each block operation increments the process's *block epoch*; wake events
//! carry the epoch they target. A stale wake (the process already continued
//! for another reason, or finished) is dropped. This makes spurious wakes
//! impossible by construction.
//!
//! # Sharded event wheel
//!
//! [`Simulation::set_shards`] partitions the pending-event set into one
//! wheel (binary heap) per shard, with processes assigned to shards by
//! key — typically their simulated node ([`Simulation::assign_shard`]).
//! Execution order never changes: events always fire in global
//! `(time, seq)` order, so the same seed yields the same trace at any
//! shard count. What the shards buy is the *heap maintenance*: when the
//! wheels grow past a threshold, a worker thread per shard drains its
//! wheel up to a conservative lookahead horizon (the earliest pending
//! event plus the configured minimum inter-node link latency) in
//! parallel, and a deterministic k-way merge lines the batch up in a
//! staged queue that pops and new inserts hit without touching any heap.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::error::{BlockedProc, SimError};
use crate::sync::{CompletionInner, EventInner};
use crate::time::{SimDuration, SimTime};

/// Identifier of a simulated process, dense from zero in spawn order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

/// A wake targets a specific block epoch; see module docs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WakeTarget {
    pub pid: ProcId,
    pub epoch: u64,
}

pub(crate) enum EventKind {
    Wake(WakeTarget),
    Call(Box<dyn FnOnce(&Scheduler) + Send>),
}

struct ScheduledEvent {
    time: SimTime,
    seq: u64,
    /// Which wheel the event was routed to. Pure load-balancing metadata:
    /// execution order depends only on `(time, seq)`.
    shard: u32,
    kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}
impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcStatus {
    /// Not yet started or currently blocked.
    Blocked,
    Running,
    Finished,
}

enum Resume {
    Go,
    Abort,
}

enum Park {
    Blocked(ProcId),
    Finished(ProcId),
    Panicked(ProcId, String),
}

struct ProcSlot {
    name: String,
    status: ProcStatus,
    /// Daemon processes (servers that block forever waiting for requests)
    /// don't keep the simulation alive and don't count as deadlocked.
    daemon: bool,
    /// Incremented each time the process blocks; wakes must match.
    epoch: u64,
    /// Human-readable reason recorded at the blocking call site.
    block_reason: &'static str,
    resume_tx: Sender<Resume>,
    join: Option<JoinHandle<()>>,
}

/// Installed trace hook.
type TraceHook = Box<dyn Fn(SimTime, &str) + Send>;

type Wheel = BinaryHeap<Reverse<ScheduledEvent>>;

/// One staging worker: owns no state, receives `(wheel, horizon)` jobs and
/// returns the wheel with its due events drained into a sorted batch. The
/// thread exits when its job channel disconnects (engine state dropped or
/// re-sharded).
struct ShardWorker {
    job_tx: Sender<(Wheel, SimTime)>,
    res_rx: Receiver<(Wheel, Vec<ScheduledEvent>)>,
}

fn spawn_shard_worker(i: usize) -> ShardWorker {
    let (job_tx, job_rx) = unbounded::<(Wheel, SimTime)>();
    let (res_tx, res_rx) = unbounded();
    std::thread::Builder::new()
        .name(format!("sim-shard{i}"))
        .spawn(move || {
            while let Ok((mut wheel, horizon)) = job_rx.recv() {
                let mut due = Vec::new();
                while wheel.peek().is_some_and(|Reverse(e)| e.time <= horizon) {
                    let Some(Reverse(e)) = wheel.pop() else {
                        unreachable!("peeked wheel entry vanished")
                    };
                    due.push(e);
                }
                if res_tx.send((wheel, due)).is_err() {
                    return;
                }
            }
        })
        .expect("failed to spawn shard worker");
    ShardWorker { job_tx, res_rx }
}

/// Don't bother shipping wheels to workers below this many queued events:
/// the per-round channel hops would cost more than the heap pops saved.
const STAGE_THRESHOLD: usize = 256;

pub(crate) struct EngineState {
    now: SimTime,
    next_seq: u64,
    /// Per-shard event wheels. Always at least one; the single-wheel case
    /// is the classic global heap.
    wheels: Vec<Wheel>,
    /// Events at or below `stage_horizon`, already in global `(time, seq)`
    /// order. While non-empty it holds *every* queued event at or below the
    /// horizon (the wheels hold only later events), so the front is the
    /// global minimum.
    staged: VecDeque<ScheduledEvent>,
    stage_horizon: Option<SimTime>,
    /// Worker thread per shard; empty unless sharding is enabled.
    workers: Vec<ShardWorker>,
    /// Shard key per process (typically its simulated node id); the shard
    /// is `key % wheels.len()`. Missing entries default to key 0.
    proc_shard: Vec<u32>,
    /// Shard of the event currently executing; `Call` events scheduled from
    /// engine context inherit it, keeping device-model event chains on the
    /// wheel of the process that started them.
    current_shard: u32,
    /// Conservative staging lookahead: the minimum inter-node link latency.
    /// Events this far past the earliest pending event may be staged
    /// together because nothing can schedule between them from outside the
    /// window (and inserts *inside* the window go straight to `staged`).
    lookahead: SimDuration,
    procs: Vec<ProcSlot>,
    live: usize,
    events_processed: u64,
    event_limit: u64,
    trace: Option<TraceHook>,
}

impl EngineState {
    pub(crate) fn schedule(&mut self, time: SimTime, kind: EventKind) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        let shard = self.shard_for(&kind);
        let ev = ScheduledEvent {
            time,
            seq,
            shard,
            kind,
        };
        if let Some(h) = self.stage_horizon {
            if time <= h {
                // Keep the partition invariant: `staged` owns everything at
                // or below the horizon. The new event carries the largest
                // seq, so it sorts after every queued event at equal time.
                let idx = self.staged.partition_point(|e| e.time <= time);
                self.staged.insert(idx, ev);
                return;
            }
        }
        self.wheels[shard as usize].push(Reverse(ev));
    }

    fn shard_for(&self, kind: &EventKind) -> u32 {
        let n = self.wheels.len() as u32;
        match kind {
            EventKind::Wake(t) => self.proc_shard.get(t.pid.0).copied().unwrap_or(0) % n,
            EventKind::Call(_) => self.current_shard % n,
        }
    }

    /// Earliest queued event time, across the staged batch and all wheels.
    fn earliest_time(&self) -> Option<SimTime> {
        if let Some(e) = self.staged.front() {
            return Some(e.time);
        }
        self.wheels
            .iter()
            .filter_map(|w| w.peek().map(|Reverse(e)| e.time))
            .min()
    }

    /// Whether the next queued event is a process wake (vs a device `Call`
    /// or nothing). Used by the direct-handoff fast path in [`Ctx::park`].
    fn next_is_wake(&self) -> Option<bool> {
        self.peek_next()
            .map(|e| matches!(e.kind, EventKind::Wake(_)))
    }

    fn peek_next(&self) -> Option<&ScheduledEvent> {
        if let Some(e) = self.staged.front() {
            return Some(e);
        }
        let mut best: Option<&ScheduledEvent> = None;
        for w in &self.wheels {
            if let Some(Reverse(e)) = w.peek() {
                if best.is_none_or(|b| (e.time, e.seq) < (b.time, b.seq)) {
                    best = Some(e);
                }
            }
        }
        best
    }

    /// Pop the globally next event in `(time, seq)` order, staging a batch
    /// through the shard workers first when it pays off.
    fn pop_next(&mut self) -> Option<ScheduledEvent> {
        self.maybe_stage();
        let ev = if let Some(ev) = self.staged.pop_front() {
            if self.staged.is_empty() {
                self.stage_horizon = None;
            }
            ev
        } else {
            let best = self
                .wheels
                .iter()
                .enumerate()
                .filter_map(|(i, w)| w.peek().map(|Reverse(e)| ((e.time, e.seq), i)))
                .min()?;
            let Some(Reverse(ev)) = self.wheels[best.1].pop() else {
                unreachable!("peeked wheel entry vanished")
            };
            ev
        };
        self.current_shard = ev.shard;
        Some(ev)
    }

    /// When the staged batch is dry and the wheels are deep, drain every
    /// wheel up to a conservative horizon on its worker thread and merge the
    /// batches deterministically. The horizon is `earliest event +
    /// lookahead`: nothing outside the window can schedule below it (link
    /// latency bounds cross-shard causality), and inserts from *inside* the
    /// window are routed into `staged` by [`EngineState::schedule`].
    fn maybe_stage(&mut self) {
        if self.workers.is_empty() || !self.staged.is_empty() {
            return;
        }
        if self.wheels.iter().map(|w| w.len()).sum::<usize>() < STAGE_THRESHOLD {
            return;
        }
        let Some(min_time) = self.earliest_time() else {
            return;
        };
        let horizon = min_time + self.lookahead;
        for (w, worker) in self.wheels.iter_mut().zip(&self.workers) {
            let wheel = std::mem::take(w);
            worker
                .job_tx
                .send((wheel, horizon))
                .expect("shard worker gone");
        }
        let mut parts = Vec::with_capacity(self.workers.len());
        for (w, worker) in self.wheels.iter_mut().zip(&self.workers) {
            let (wheel, due) = worker.res_rx.recv().expect("shard worker gone");
            *w = wheel;
            parts.push(due);
        }
        // Deterministic k-way merge by (time, seq): the staged order is the
        // exact global order regardless of shard count or worker timing.
        self.staged = kway_merge(parts);
        if !self.staged.is_empty() {
            self.stage_horizon = Some(horizon);
        }
    }

    /// Re-partition the pending-event set into `shards` wheels and spawn
    /// (or retire) the staging workers.
    fn set_shards(&mut self, shards: usize, lookahead: SimDuration) {
        let shards = shards.max(1);
        let mut all: Vec<ScheduledEvent> = Vec::new();
        for w in self.wheels.iter_mut() {
            all.extend(std::mem::take(w).into_vec().into_iter().map(|Reverse(e)| e));
        }
        all.extend(self.staged.drain(..));
        self.stage_horizon = None;
        self.lookahead = lookahead;
        self.wheels = (0..shards).map(|_| Wheel::new()).collect();
        // Dropping the old workers' job channels retires their threads.
        self.workers = if shards >= 2 {
            (0..shards).map(spawn_shard_worker).collect()
        } else {
            Vec::new()
        };
        for mut ev in all {
            ev.shard = self.shard_for(&ev.kind);
            self.wheels[ev.shard as usize].push(Reverse(ev));
        }
    }

    fn assign_shard(&mut self, pid: ProcId, key: u32) {
        if self.proc_shard.len() <= pid.0 {
            self.proc_shard.resize(pid.0 + 1, 0);
        }
        self.proc_shard[pid.0] = key;
    }

    fn trace(&self, msg: &str) {
        if let Some(t) = &self.trace {
            t(self.now, msg);
        }
    }
}

/// Merge per-shard batches (each sorted ascending) into one globally sorted
/// queue. O(k) per event; k (the shard count) is small.
fn kway_merge(parts: Vec<Vec<ScheduledEvent>>) -> VecDeque<ScheduledEvent> {
    let total = parts.iter().map(|p| p.len()).sum();
    let mut iters: Vec<_> = parts
        .into_iter()
        .map(|p| p.into_iter().peekable())
        .collect();
    let mut out = VecDeque::with_capacity(total);
    loop {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (i, it) in iters.iter_mut().enumerate() {
            if let Some(e) = it.peek() {
                if best.is_none_or(|(t, s, _)| (e.time, e.seq) < (t, s)) {
                    best = Some((e.time, e.seq, i));
                }
            }
        }
        let Some((_, _, i)) = best else {
            break;
        };
        let Some(ev) = iters[i].next() else {
            unreachable!("peeked merge entry vanished")
        };
        out.push_back(ev);
    }
    out
}

struct Shared {
    state: Mutex<EngineState>,
    park_tx: Sender<Park>,
}

/// Handle for scheduling future work; clonable and usable from process code
/// and from device callbacks alike.
#[derive(Clone)]
pub struct Scheduler {
    shared: Arc<Shared>,
}

impl Scheduler {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.state.lock().now
    }

    /// Run `f` at virtual time `t` (engine context, no process running).
    pub fn call_at<F>(&self, t: SimTime, f: F)
    where
        F: FnOnce(&Scheduler) + Send + 'static,
    {
        let mut st = self.shared.state.lock();
        let t = t.max(st.now);
        st.schedule(t, EventKind::Call(Box::new(f)));
    }

    /// Run `f` after `d` virtual time.
    pub fn call_after<F>(&self, d: SimDuration, f: F)
    where
        F: FnOnce(&Scheduler) + Send + 'static,
    {
        let mut st = self.shared.state.lock();
        let t = st.now + d;
        st.schedule(t, EventKind::Call(Box::new(f)));
    }

    /// Emit a trace line through the installed trace hook, if any.
    pub fn trace(&self, msg: &str) {
        self.shared.state.lock().trace(msg);
    }

    /// Whether a trace hook is installed (lets hot paths skip formatting).
    pub fn has_trace(&self) -> bool {
        self.shared.state.lock().trace.is_some()
    }

    /// Spawn a new simulated process; it becomes runnable at the current
    /// virtual time.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        spawn_inner(&self.shared, name.into(), false, f)
    }

    /// Spawn a daemon process: a server that may block forever without
    /// keeping the simulation alive or counting as deadlocked.
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        spawn_inner(&self.shared, name.into(), true, f)
    }

    pub(crate) fn wake_at(&self, t: SimTime, target: WakeTarget) {
        let mut st = self.shared.state.lock();
        let t = t.max(st.now);
        st.schedule(t, EventKind::Wake(target));
    }

    /// Assign `pid` to an event-wheel shard by key (typically its simulated
    /// node id); see [`Simulation::assign_shard`].
    pub fn assign_shard(&self, pid: ProcId, key: usize) {
        self.shared.state.lock().assign_shard(pid, key as u32);
    }
}

/// Per-process context passed to process closures. All blocking operations
/// of the simulation go through this handle.
pub struct Ctx {
    pid: ProcId,
    scheduler: Scheduler,
    resume_rx: Receiver<Resume>,
}

/// Internal marker used to unwind aborted process threads quietly.
struct AbortMarker;

impl Ctx {
    /// This process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now()
    }

    /// A clonable scheduler handle for device models.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler.clone()
    }

    /// Emit a trace line (no-op unless a trace hook is installed).
    pub fn trace(&self, msg: &str) {
        self.scheduler.trace(msg);
    }

    /// Whether a trace hook is installed.
    pub fn has_trace(&self) -> bool {
        self.scheduler.has_trace()
    }

    /// Spawn a sibling process, runnable at the current virtual time.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.scheduler.spawn(name, f)
    }

    /// Advance this process's virtual clock by `d` (models compute or fixed
    /// software overhead).
    pub fn sleep(&mut self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        {
            let mut st = self.scheduler.shared.state.lock();
            let t = st.now + d;
            // Fast-forward: while this process runs, no other thread can
            // mutate the scheduler (every other process is parked and the
            // engine thread is waiting for our park), so if our wake
            // would sort before everything queued, parking would only
            // make the engine pop it straight back to us. Advance the
            // clock inline instead and skip both thread handoffs — the
            // event still counts, identically to the two-hop path. A
            // queued event at the same instant wins (it holds an earlier
            // sequence number), exactly as in the two-hop path.
            if st.events_processed < st.event_limit && st.earliest_time().is_none_or(|h| t < h) {
                st.now = t;
                st.events_processed += 1;
                return;
            }
            let slot = &mut st.procs[self.pid.0];
            slot.epoch += 1;
            slot.block_reason = "sleep";
            let epoch = slot.epoch;
            st.schedule(
                t,
                EventKind::Wake(WakeTarget {
                    pid: self.pid,
                    epoch,
                }),
            );
        }
        self.park();
    }

    /// Yield the processor: requeue after every event already scheduled at
    /// the current instant.
    pub fn yield_now(&mut self) {
        {
            let mut st = self.scheduler.shared.state.lock();
            let now = st.now;
            // Fast-forward (see `sleep`): with nothing else queued at the
            // current instant the yield is a no-op — requeueing would
            // bounce straight back through the engine thread.
            if st.events_processed < st.event_limit && st.earliest_time().is_none_or(|h| now < h) {
                st.events_processed += 1;
                return;
            }
            let slot = &mut st.procs[self.pid.0];
            slot.epoch += 1;
            slot.block_reason = "yield";
            let epoch = slot.epoch;
            st.schedule(
                now,
                EventKind::Wake(WakeTarget {
                    pid: self.pid,
                    epoch,
                }),
            );
        }
        self.park();
    }

    /// Block until the completion is signalled. Returns immediately if it
    /// already is.
    pub fn wait(&mut self, c: &crate::sync::Completion) {
        self.wait_reason(c, "completion");
    }

    /// Like [`Ctx::wait`] but records `reason` for deadlock diagnostics.
    pub fn wait_reason(&mut self, c: &crate::sync::Completion, reason: &'static str) {
        loop {
            let registered = {
                let mut st = self.scheduler.shared.state.lock();
                let mut inner = c.inner().lock();
                if inner.done {
                    return;
                }
                let slot = &mut st.procs[self.pid.0];
                slot.epoch += 1;
                slot.block_reason = reason;
                inner.waiters.push(WakeTarget {
                    pid: self.pid,
                    epoch: slot.epoch,
                });
                true
            };
            debug_assert!(registered);
            self.park();
        }
    }

    /// Block until the event's epoch differs from `seen`. Returns the new
    /// epoch. The standard condition-polling pattern is:
    ///
    /// ```ignore
    /// loop {
    ///     let seen = ev.epoch();
    ///     if condition() { break; }
    ///     ctx.wait_event(&ev, seen, "why");
    /// }
    /// ```
    pub fn wait_event(
        &mut self,
        ev: &crate::sync::SimEvent,
        seen: u64,
        reason: &'static str,
    ) -> u64 {
        loop {
            {
                let mut st = self.scheduler.shared.state.lock();
                let mut inner = ev.inner().lock();
                if inner.epoch != seen {
                    return inner.epoch;
                }
                let slot = &mut st.procs[self.pid.0];
                slot.epoch += 1;
                slot.block_reason = reason;
                inner.waiters.push(WakeTarget {
                    pid: self.pid,
                    epoch: slot.epoch,
                });
            }
            self.park();
        }
    }

    /// Like [`Ctx::wait_event`] but gives up at virtual time `deadline`:
    /// returns the new epoch if the event fired, or `seen` unchanged on
    /// timeout. Both the event waiter and a deadline wake are registered
    /// with the same block epoch, so whichever fires second is dropped as
    /// stale by the engine — a timed-out waiter can never be woken twice.
    pub fn wait_event_until(
        &mut self,
        ev: &crate::sync::SimEvent,
        seen: u64,
        deadline: SimTime,
        reason: &'static str,
    ) -> u64 {
        loop {
            {
                let mut st = self.scheduler.shared.state.lock();
                let mut inner = ev.inner().lock();
                if inner.epoch != seen {
                    return inner.epoch;
                }
                if st.now >= deadline {
                    return seen;
                }
                let slot = &mut st.procs[self.pid.0];
                slot.epoch += 1;
                slot.block_reason = reason;
                let target = WakeTarget {
                    pid: self.pid,
                    epoch: slot.epoch,
                };
                inner.waiters.push(target);
                st.schedule(deadline, EventKind::Wake(target));
            }
            self.park();
        }
    }

    fn park(&mut self) {
        if profile_enabled() {
            LAST_RESUME.with(|c| {
                if let Some(t) = c.take() {
                    PROFILE_ACTIVE_NS.fetch_add(
                        t.elapsed().as_nanos() as u64,
                        std::sync::atomic::Ordering::Relaxed,
                    );
                }
            });
        }
        // Direct handoff: while this thread runs, the engine thread sits
        // blocked waiting for our park, so bouncing control through it
        // costs two thread switches per event. If the next event is a
        // plain wake of a parked process, deliver it from here: pop it,
        // mark the target running and resume it directly — or, when the
        // wake targets this very process, just keep running with no
        // switch at all. Device callbacks (`Call`), an exhausted event
        // budget, an empty queue (run end / deadlock detection) and
        // process exit still go through the engine thread, which keeps
        // sole authority over run termination and error reporting.
        enum Hand {
            SelfResume,
            Direct(Sender<Resume>),
            Engine,
        }
        let hand = {
            let mut st = self.scheduler.shared.state.lock();
            st.procs[self.pid.0].status = ProcStatus::Blocked;
            loop {
                if st.events_processed >= st.event_limit {
                    // Let the engine thread pop the offending event and
                    // report `SimError::EventLimit`.
                    break Hand::Engine;
                }
                match st.next_is_wake() {
                    Some(true) => {}
                    Some(false) | None => break Hand::Engine,
                }
                let Some(ev) = st.pop_next() else {
                    unreachable!("peeked event vanished under the state lock")
                };
                let EventKind::Wake(target) = ev.kind else {
                    unreachable!("next_is_wake said wake")
                };
                debug_assert!(ev.time >= st.now);
                st.now = ev.time;
                st.events_processed += 1;
                let slot = &mut st.procs[target.pid.0];
                if slot.status != ProcStatus::Blocked || slot.epoch != target.epoch {
                    continue; // stale wake, skipped exactly like the engine loop
                }
                slot.status = ProcStatus::Running;
                if target.pid == self.pid {
                    break Hand::SelfResume;
                }
                break Hand::Direct(slot.resume_tx.clone());
            }
        };
        match hand {
            Hand::SelfResume => {
                if profile_enabled() {
                    LAST_RESUME.with(|c| c.set(Some(std::time::Instant::now())));
                }
                return;
            }
            Hand::Direct(tx) => {
                tx.send(Resume::Go).expect("process thread gone");
            }
            Hand::Engine => {
                self.scheduler
                    .shared
                    .park_tx
                    .send(Park::Blocked(self.pid))
                    .expect("engine gone while parking");
            }
        }
        match self.resume_rx.recv() {
            Ok(Resume::Go) => {}
            // resume_unwind skips the panic hook: teardown stays quiet.
            Ok(Resume::Abort) | Err(_) => std::panic::resume_unwind(Box::new(AbortMarker)),
        }
        if profile_enabled() {
            LAST_RESUME.with(|c| c.set(Some(std::time::Instant::now())));
        }
    }
}

static PROFILE_ACTIVE_NS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
thread_local! {
    static LAST_RESUME: std::cell::Cell<Option<std::time::Instant>> =
        const { std::cell::Cell::new(None) };
}
fn profile_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("SIM_PROFILE").is_some())
}

/// Outcome of a completed run.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// Virtual time of the last processed event.
    pub final_time: SimTime,
    /// Total events processed.
    pub events_processed: u64,
}

/// A deterministic discrete-event simulation.
pub struct Simulation {
    shared: Arc<Shared>,
    park_rx: Receiver<Park>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

fn spawn_inner<F>(shared: &Arc<Shared>, name: String, daemon: bool, f: F) -> ProcId
where
    F: FnOnce(&mut Ctx) + Send + 'static,
{
    let (resume_tx, resume_rx) = unbounded();
    let pid;
    {
        let mut st = shared.state.lock();
        pid = ProcId(st.procs.len());
        st.procs.push(ProcSlot {
            name: name.clone(),
            status: ProcStatus::Blocked,
            daemon,
            epoch: 0,
            block_reason: "start",
            resume_tx,
            join: None,
        });
        if !daemon {
            st.live += 1;
        }
        let now = st.now;
        st.schedule(now, EventKind::Wake(WakeTarget { pid, epoch: 0 }));
    }
    let mut ctx = Ctx {
        pid,
        scheduler: Scheduler {
            shared: shared.clone(),
        },
        resume_rx,
    };
    let park_tx = shared.park_tx.clone();
    let handle = std::thread::Builder::new()
        .name(format!("sim:{name}"))
        .spawn(move || {
            // Wait for the first wake before touching anything.
            match ctx.resume_rx.recv() {
                Ok(Resume::Go) => {}
                Ok(Resume::Abort) | Err(_) => return,
            }
            let result = catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
            match result {
                Ok(()) => {
                    let _ = park_tx.send(Park::Finished(pid));
                }
                Err(payload) => {
                    if payload.downcast_ref::<AbortMarker>().is_some() {
                        // Quiet teardown; engine is gone or aborting us.
                        return;
                    }
                    let msg = panic_message(payload.as_ref());
                    let _ = park_tx.send(Park::Panicked(pid, msg));
                }
            }
        })
        .expect("failed to spawn sim process thread");
    shared.state.lock().procs[pid.0].join = Some(handle);
    pid
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Simulation {
    pub fn new() -> Self {
        let (park_tx, park_rx) = unbounded();
        let shared = Arc::new(Shared {
            state: Mutex::new(EngineState {
                now: SimTime::ZERO,
                next_seq: 0,
                wheels: vec![Wheel::new()],
                staged: VecDeque::new(),
                stage_horizon: None,
                workers: Vec::new(),
                proc_shard: Vec::new(),
                current_shard: 0,
                lookahead: SimDuration::ZERO,
                procs: Vec::new(),
                live: 0,
                events_processed: 0,
                event_limit: u64::MAX,
                trace: None,
            }),
            park_tx,
        });
        Simulation { shared, park_rx }
    }

    /// Install a trace hook invoked by [`Ctx::trace`] / [`Scheduler::trace`].
    pub fn set_trace(&self, hook: impl Fn(SimTime, &str) + Send + 'static) {
        self.shared.state.lock().trace = Some(Box::new(hook));
    }

    /// Cap the number of processed events (livelock guard for tests).
    pub fn set_event_limit(&self, limit: u64) {
        self.shared.state.lock().event_limit = limit;
    }

    /// Scheduler handle for constructing device models before `run`.
    pub fn scheduler(&self) -> Scheduler {
        Scheduler {
            shared: self.shared.clone(),
        }
    }

    /// Spawn a root process; it becomes runnable at t=0 (or the current time
    /// if the simulation already ran).
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        spawn_inner(&self.shared, name.into(), false, f)
    }

    /// Spawn a daemon process (see [`Scheduler::spawn_daemon`]).
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        spawn_inner(&self.shared, name.into(), true, f)
    }

    /// Run until the event queue drains and every process has finished.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        let profile = std::env::var_os("SIM_PROFILE").is_some();
        let mut calls = 0u64;
        let mut call_ns = 0u64;
        let mut wakes = 0u64;
        let mut wake_ns = 0u64;
        let t_run = std::time::Instant::now();
        loop {
            let ev = {
                let mut st = self.shared.state.lock();
                match st.pop_next() {
                    Some(ev) => {
                        debug_assert!(ev.time >= st.now);
                        st.now = ev.time;
                        st.events_processed += 1;
                        if st.events_processed > st.event_limit {
                            return Err(SimError::EventLimit {
                                limit: st.event_limit,
                                at: st.now,
                            });
                        }
                        Some(ev)
                    }
                    None => None,
                }
            };
            let Some(ev) = ev else {
                let st = self.shared.state.lock();
                if st.live == 0 {
                    if profile {
                        eprintln!(
                            "SIM_PROFILE: total {:.1}ms | {} calls {:.1}ms | {} wakes {:.1}ms | proc-active {:.1}ms",
                            t_run.elapsed().as_secs_f64() * 1e3,
                            calls,
                            call_ns as f64 / 1e6,
                            wakes,
                            wake_ns as f64 / 1e6,
                            PROFILE_ACTIVE_NS.load(std::sync::atomic::Ordering::Relaxed) as f64
                                / 1e6,
                        );
                    }
                    return Ok(RunReport {
                        final_time: st.now,
                        events_processed: st.events_processed,
                    });
                }
                let blocked = st
                    .procs
                    .iter()
                    .filter(|p| p.status == ProcStatus::Blocked && !p.daemon)
                    .map(|p| BlockedProc {
                        name: p.name.clone(),
                        reason: p.block_reason.to_string(),
                    })
                    .collect();
                return Err(SimError::Deadlock {
                    at: st.now,
                    blocked,
                });
            };
            match ev.kind {
                EventKind::Call(f) => {
                    let t0 = std::time::Instant::now();
                    let sched = self.scheduler();
                    f(&sched);
                    calls += 1;
                    call_ns += t0.elapsed().as_nanos() as u64;
                }
                EventKind::Wake(target) => {
                    let t0 = std::time::Instant::now();
                    let resume_tx = {
                        let mut st = self.shared.state.lock();
                        let slot = &mut st.procs[target.pid.0];
                        if slot.status != ProcStatus::Blocked || slot.epoch != target.epoch {
                            continue; // stale wake
                        }
                        slot.status = ProcStatus::Running;
                        slot.resume_tx.clone()
                    };
                    resume_tx.send(Resume::Go).expect("process thread gone");
                    let parked = self.park_rx.recv().expect("all process threads gone");
                    wakes += 1;
                    wake_ns += t0.elapsed().as_nanos() as u64;
                    match parked {
                        Park::Blocked(pid) => {
                            self.shared.state.lock().procs[pid.0].status = ProcStatus::Blocked;
                        }
                        Park::Finished(pid) => {
                            let mut st = self.shared.state.lock();
                            st.procs[pid.0].status = ProcStatus::Finished;
                            if !st.procs[pid.0].daemon {
                                st.live -= 1;
                            }
                        }
                        Park::Panicked(pid, message) => {
                            let name = {
                                let mut st = self.shared.state.lock();
                                st.procs[pid.0].status = ProcStatus::Finished;
                                if !st.procs[pid.0].daemon {
                                    st.live -= 1;
                                }
                                st.procs[pid.0].name.clone()
                            };
                            return Err(SimError::ProcessPanic { name, message });
                        }
                    }
                }
            }
        }
    }

    /// Convenience: run and panic with a readable message on failure.
    pub fn run_expect(&mut self) -> RunReport {
        match self.run() {
            Ok(r) => r,
            Err(e) => panic!("simulation failed: {e}"),
        }
    }

    /// Name of a process (for diagnostics).
    pub fn proc_name(&self, pid: ProcId) -> String {
        self.shared.state.lock().procs[pid.0].name.clone()
    }

    /// Partition the event wheel into `shards` per-shard heaps, each
    /// maintained by its own worker thread, with `lookahead` as the
    /// conservative staging window (use the minimum inter-node link
    /// latency). Execution order — and therefore every trace and result —
    /// is identical at any shard count; see the module docs. `shards <= 1`
    /// restores the single global wheel. Pending events are re-homed.
    pub fn set_shards(&self, shards: usize, lookahead: SimDuration) {
        self.shared.state.lock().set_shards(shards, lookahead);
    }

    /// Current shard count.
    pub fn shards(&self) -> usize {
        self.shared.state.lock().wheels.len()
    }

    /// Assign `pid` to an event-wheel shard by key; the shard is
    /// `key % shards`. Typically the key is the simulated node id, so each
    /// node's event chains stay on one wheel. Keys survive re-sharding.
    pub fn assign_shard(&self, pid: ProcId, key: usize) {
        self.shared.state.lock().assign_shard(pid, key as u32);
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // Abort any still-parked process threads so their stacks unwind and
        // the threads exit; then join them.
        let mut handles = Vec::new();
        {
            let mut st = self.shared.state.lock();
            for slot in st.procs.iter_mut() {
                if slot.status != ProcStatus::Finished {
                    let _ = slot.resume_tx.send(Resume::Abort);
                }
                if let Some(h) = slot.join.take() {
                    handles.push(h);
                }
            }
        }
        for h in handles {
            let _ = h.join();
        }
    }
}

// Internal plumbing shared with sync.rs.
pub(crate) fn fire_completion(sched: &Scheduler, inner: &Mutex<CompletionInner>) {
    let waiters = {
        let mut c = inner.lock();
        if c.done {
            return;
        }
        c.done = true;
        std::mem::take(&mut c.waiters)
    };
    let now = sched.now();
    for w in waiters {
        sched.wake_at(now, w);
    }
}

pub(crate) fn fire_event(sched: &Scheduler, inner: &Mutex<EventInner>) {
    let waiters = {
        let mut e = inner.lock();
        e.epoch += 1;
        std::mem::take(&mut e.waiters)
    };
    let now = sched.now();
    for w in waiters {
        sched.wake_at(now, w);
    }
}
