//! Virtual time: nanosecond-resolution instants and durations.
//!
//! All performance numbers produced by the simulator are measured in this
//! virtual clock, never in wall-clock time. The clock only moves when the
//! engine pops an event, so two runs with identical inputs produce identical
//! timelines.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, counted in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Elapsed duration since `earlier`; saturates to zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Build a duration from fractional seconds, rounding to nanoseconds.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Build a duration from fractional microseconds.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(us >= 0.0 && us.is_finite(), "invalid duration: {us}");
        SimDuration((us * 1e3).round() as u64)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

/// Time to move `bytes` at `bytes_per_sec` (pure serialization, no latency).
#[inline]
pub fn transfer_time(bytes: u64, bytes_per_sec: f64) -> SimDuration {
    assert!(
        bytes_per_sec > 0.0,
        "bandwidth must be positive: {bytes_per_sec}"
    );
    SimDuration(((bytes as f64 / bytes_per_sec) * 1e9).round() as u64)
}

/// Achieved bandwidth in bytes/second for `bytes` moved in `elapsed`.
#[inline]
pub fn bandwidth(bytes: u64, elapsed: SimDuration) -> f64 {
    if elapsed.is_zero() {
        return f64::INFINITY;
    }
    bytes as f64 / elapsed.as_secs_f64()
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        assert!(rhs >= 0.0 && rhs.is_finite());
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_add_duration() {
        let t = SimTime(100) + SimDuration::from_nanos(50);
        assert_eq!(t, SimTime(150));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
        assert_eq!(
            SimDuration::from_micros_f64(2.5),
            SimDuration::from_nanos(2500)
        );
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(5).since(SimTime(10)), SimDuration::ZERO);
        assert_eq!(SimTime(10).since(SimTime(4)), SimDuration(6));
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 1 GiB at 1 GiB/s is one second.
        let gib = 1u64 << 30;
        let t = transfer_time(gib, gib as f64);
        assert_eq!(t, SimDuration::from_secs(1));
        let bw = bandwidth(gib, t);
        assert!((bw - gib as f64).abs() < 1.0);
    }

    #[test]
    fn zero_elapsed_bandwidth_is_infinite() {
        assert!(bandwidth(10, SimDuration::ZERO).is_infinite());
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    #[should_panic(expected = "SimTime underflow")]
    fn sub_earlier_from_later_panics() {
        let _ = SimTime(1) - SimTime(2);
    }

    #[test]
    fn duration_scalar_ops() {
        assert_eq!(SimDuration(100) * 3u64, SimDuration(300));
        assert_eq!(SimDuration(100) * 0.5f64, SimDuration(50));
        assert_eq!(SimDuration(100) / 4, SimDuration(25));
        let total: SimDuration = [SimDuration(1), SimDuration(2)].into_iter().sum();
        assert_eq!(total, SimDuration(3));
    }
}
