//! # simcore — deterministic discrete-event simulation engine
//!
//! The substrate under the DCFA-MPI reproduction: a discrete-event engine
//! whose simulated processes are cooperative OS threads. Exactly one process
//! runs at a time and all simultaneous events fire in schedule order, so runs
//! are bit-for-bit deterministic while process code stays ordinary Rust.
//!
//! ## Concepts
//!
//! * [`Simulation`] — owns the event queue and the process table.
//! * [`Ctx`] — handed to each process closure; all blocking goes through it
//!   ([`Ctx::sleep`], [`Ctx::wait`], [`Ctx::wait_event`], [`Ctx::yield_now`]).
//! * [`Scheduler`] — clonable handle used by device models to schedule timed
//!   callbacks and fire completions.
//! * [`Completion`] / [`SimEvent`] / [`Mailbox`] — synchronization objects in
//!   virtual time.
//!
//! ## Example
//!
//! ```
//! use simcore::{Simulation, SimDuration, Completion};
//!
//! let mut sim = Simulation::new();
//! let done = Completion::new();
//! let done2 = done.clone();
//! sim.spawn("device-user", move |ctx| {
//!     let sched = ctx.scheduler();
//!     // A device finishes its work 3us from now:
//!     done2.complete_at(&sched, ctx.now() + SimDuration::from_micros(3));
//!     ctx.wait(&done2);
//!     assert_eq!(ctx.now().as_micros_f64(), 3.0);
//! });
//! let report = sim.run_expect();
//! assert_eq!(report.final_time.as_micros_f64(), 3.0);
//! ```

mod engine;
mod error;
mod sync;
mod time;

pub use engine::{Ctx, ProcId, RunReport, Scheduler, Simulation};
pub use error::{BlockedProc, SimError};
pub use sync::{Completion, Mailbox, SimEvent};
pub use time::{bandwidth, transfer_time, SimDuration, SimTime};
