//! Synchronization objects connecting device models to processes:
//! one-shot [`Completion`]s, broadcast [`SimEvent`]s and FIFO [`Mailbox`]es.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{fire_completion, fire_event, Ctx, Scheduler, WakeTarget};
use crate::time::SimTime;

pub(crate) struct CompletionInner {
    pub(crate) done: bool,
    pub(crate) waiters: Vec<WakeTarget>,
}

/// A one-shot flag in virtual time. Devices signal it (immediately or at a
/// scheduled instant); processes block on it with [`Ctx::wait`].
#[derive(Clone)]
pub struct Completion {
    inner: Arc<Mutex<CompletionInner>>,
}

impl Default for Completion {
    fn default() -> Self {
        Self::new()
    }
}

impl Completion {
    pub fn new() -> Self {
        Completion {
            inner: Arc::new(Mutex::new(CompletionInner {
                done: false,
                waiters: Vec::new(),
            })),
        }
    }

    /// True once the completion has fired.
    pub fn is_done(&self) -> bool {
        self.inner.lock().done
    }

    /// Fire at virtual time `t` (clamped to now if `t` is in the past).
    pub fn complete_at(&self, sched: &Scheduler, t: SimTime) {
        let inner = self.inner.clone();
        sched.call_at(t, move |s| fire_completion(s, &inner));
    }

    /// Fire at the current virtual time.
    pub fn complete_now(&self, sched: &Scheduler) {
        fire_completion(sched, &self.inner);
    }

    pub(crate) fn inner(&self) -> &Mutex<CompletionInner> {
        &self.inner
    }
}

pub(crate) struct EventInner {
    pub(crate) epoch: u64,
    pub(crate) waiters: Vec<WakeTarget>,
}

/// A broadcast notification channel in virtual time, analogous to a condition
/// variable. Waiters capture the epoch, test their condition, then sleep
/// until the epoch changes.
#[derive(Clone)]
pub struct SimEvent {
    inner: Arc<Mutex<EventInner>>,
}

impl Default for SimEvent {
    fn default() -> Self {
        Self::new()
    }
}

impl SimEvent {
    pub fn new() -> Self {
        SimEvent {
            inner: Arc::new(Mutex::new(EventInner {
                epoch: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Current notification epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Wake all current waiters at the present virtual time.
    pub fn notify_all(&self, sched: &Scheduler) {
        fire_event(sched, &self.inner);
    }

    /// Wake all waiters registered at time `t` when it arrives.
    pub fn notify_at(&self, sched: &Scheduler, t: SimTime) {
        let inner = self.inner.clone();
        sched.call_at(t, move |s| fire_event(s, &inner));
    }

    pub(crate) fn inner(&self) -> &Mutex<EventInner> {
        &self.inner
    }
}

struct MailboxInner<T> {
    queue: VecDeque<T>,
}

/// An unbounded FIFO channel in virtual time: sends are instantaneous
/// (callers model any transfer cost themselves); receives block the calling
/// process until an item is available.
pub struct Mailbox<T> {
    inner: Arc<Mutex<MailboxInner<T>>>,
    event: SimEvent,
}

impl<T> Clone for Mailbox<T> {
    fn clone(&self) -> Self {
        Mailbox {
            inner: self.inner.clone(),
            event: self.event.clone(),
        }
    }
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Mailbox<T> {
    pub fn new() -> Self {
        Mailbox {
            inner: Arc::new(Mutex::new(MailboxInner {
                queue: VecDeque::new(),
            })),
            event: SimEvent::new(),
        }
    }

    /// Enqueue an item now and wake any waiting receiver.
    pub fn send(&self, sched: &Scheduler, item: T) {
        self.inner.lock().queue.push_back(item);
        self.event.notify_all(sched);
    }

    /// Enqueue an item when virtual time `t` arrives (models delivery delay).
    pub fn send_at(&self, sched: &Scheduler, t: SimTime, item: T)
    where
        T: Send + 'static,
    {
        let inner = self.inner.clone();
        let event = self.event.clone();
        sched.call_at(t, move |s| {
            inner.lock().queue.push_back(item);
            event.notify_all(s);
        });
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.lock().queue.pop_front()
    }

    /// Blocking receive in virtual time.
    pub fn recv(&self, ctx: &mut Ctx) -> T {
        loop {
            let seen = self.event.epoch();
            if let Some(item) = self.try_recv() {
                return item;
            }
            ctx.wait_event(&self.event, seen, "mailbox recv");
        }
    }

    /// Blocking receive that gives up at virtual time `deadline`.
    pub fn recv_deadline(&self, ctx: &mut Ctx, deadline: SimTime) -> Option<T> {
        loop {
            let seen = self.event.epoch();
            if let Some(item) = self.try_recv() {
                return Some(item);
            }
            if ctx.now() >= deadline {
                return None;
            }
            ctx.wait_event_until(&self.event, seen, deadline, "mailbox recv (deadline)");
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::time::SimDuration;

    #[test]
    fn completion_fires_once() {
        let c = Completion::new();
        assert!(!c.is_done());
        let sim = Simulation::new();
        let sched = sim.scheduler();
        c.complete_now(&sched);
        assert!(c.is_done());
        // Second fire is a no-op, not a panic.
        c.complete_now(&sched);
        assert!(c.is_done());
    }

    #[test]
    fn mailbox_try_recv_order() {
        let sim = Simulation::new();
        let sched = sim.scheduler();
        let mb: Mailbox<u32> = Mailbox::new();
        mb.send(&sched, 1);
        mb.send(&sched, 2);
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.try_recv(), Some(1));
        assert_eq!(mb.try_recv(), Some(2));
        assert_eq!(mb.try_recv(), None);
        assert!(mb.is_empty());
    }

    #[test]
    fn event_epoch_advances_on_notify() {
        let sim = Simulation::new();
        let sched = sim.scheduler();
        let ev = SimEvent::new();
        let e0 = ev.epoch();
        ev.notify_all(&sched);
        assert_eq!(ev.epoch(), e0 + 1);
    }

    #[test]
    fn recv_deadline_times_out_and_recovers() {
        let mut sim = Simulation::new();
        let sched = sim.scheduler();
        let mb: Mailbox<&'static str> = Mailbox::new();
        let mb2 = mb.clone();
        // Item lands at t=900; a 500ns deadline must miss it, a second
        // deadline wait must pick it up at exactly t=900.
        mb.send_at(&sched, crate::time::SimTime(900), "late");
        sim.spawn("rx", move |ctx| {
            let miss = mb2.recv_deadline(ctx, crate::time::SimTime(500));
            assert_eq!(miss, None);
            assert_eq!(ctx.now().as_nanos(), 500);
            let hit = mb2.recv_deadline(ctx, crate::time::SimTime(2000));
            assert_eq!(hit, Some("late"));
            assert_eq!(ctx.now().as_nanos(), 900);
        });
        sim.run_expect();
    }

    #[test]
    fn recv_deadline_returns_immediately_when_ready() {
        let mut sim = Simulation::new();
        let sched = sim.scheduler();
        let mb: Mailbox<u32> = Mailbox::new();
        mb.send(&sched, 7);
        let mb2 = mb.clone();
        sim.spawn("rx", move |ctx| {
            // Deadline already in the past still drains queued items.
            assert_eq!(mb2.recv_deadline(ctx, crate::time::SimTime(0)), Some(7));
            assert_eq!(mb2.recv_deadline(ctx, crate::time::SimTime(0)), None);
        });
        sim.run_expect();
    }

    #[test]
    fn delayed_send_arrives_at_time() {
        let mut sim = Simulation::new();
        let sched = sim.scheduler();
        let mb: Mailbox<&'static str> = Mailbox::new();
        let mb2 = mb.clone();
        mb.send_at(&sched, crate::time::SimTime(500), "hello");
        sim.spawn("rx", move |ctx| {
            let item = mb2.recv(ctx);
            assert_eq!(item, "hello");
            assert_eq!(ctx.now().as_nanos(), 500);
            ctx.sleep(SimDuration::from_nanos(1));
        });
        let report = sim.run_expect();
        assert_eq!(report.final_time.as_nanos(), 501);
    }
}
