//! Engine-level error reporting.

use std::fmt;

use crate::time::SimTime;

/// A process that was still blocked when the event queue drained.
#[derive(Debug, Clone)]
pub struct BlockedProc {
    /// Process name given at spawn time.
    pub name: String,
    /// Reason string recorded at the blocking call site.
    pub reason: String,
}

/// Errors surfaced by [`crate::Simulation::run`].
#[derive(Debug)]
pub enum SimError {
    /// The event queue drained while processes were still blocked: classic
    /// distributed deadlock (e.g. two MPI ranks both in blocking receive).
    Deadlock {
        /// Virtual time at which the queue drained.
        at: SimTime,
        /// Every still-blocked process with its recorded wait reason.
        blocked: Vec<BlockedProc>,
    },
    /// A process panicked; the payload message is captured.
    ProcessPanic {
        /// Name of the panicking process.
        name: String,
        /// Stringified panic payload.
        message: String,
    },
    /// The configured event limit was exceeded (livelock guard).
    EventLimit {
        /// The limit that was hit.
        limit: u64,
        /// Virtual time when the limit was hit.
        at: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { at, blocked } => {
                writeln!(
                    f,
                    "simulation deadlocked at t={at} with {} blocked process(es):",
                    blocked.len()
                )?;
                for b in blocked {
                    writeln!(f, "  - {} (waiting: {})", b.name, b.reason)?;
                }
                Ok(())
            }
            SimError::ProcessPanic { name, message } => {
                write!(f, "process '{name}' panicked: {message}")
            }
            SimError::EventLimit { limit, at } => {
                write!(f, "event limit {limit} exceeded at t={at} (livelock?)")
            }
        }
    }
}

impl std::error::Error for SimError {}
