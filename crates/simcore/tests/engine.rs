//! Integration tests for the discrete-event engine: determinism, ordering,
//! blocking primitives, deadlock and panic reporting.

use std::sync::Arc;

use parking_lot::Mutex;
use simcore::{Completion, Mailbox, SimDuration, SimError, SimEvent, SimTime, Simulation};

#[test]
fn single_process_advances_time() {
    let mut sim = Simulation::new();
    sim.spawn("p", |ctx| {
        assert_eq!(ctx.now(), SimTime::ZERO);
        ctx.sleep(SimDuration::from_micros(5));
        assert_eq!(ctx.now().as_nanos(), 5_000);
        ctx.sleep(SimDuration::from_micros(5));
        assert_eq!(ctx.now().as_nanos(), 10_000);
    });
    let report = sim.run_expect();
    assert_eq!(report.final_time.as_nanos(), 10_000);
}

#[test]
fn zero_sleep_is_noop() {
    let mut sim = Simulation::new();
    sim.spawn("p", |ctx| {
        ctx.sleep(SimDuration::ZERO);
        assert_eq!(ctx.now(), SimTime::ZERO);
    });
    sim.run_expect();
}

#[test]
fn processes_interleave_in_time_order() {
    let log: Arc<Mutex<Vec<(u64, &'static str)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new();
    for (name, step) in [("a", 3u64), ("b", 5u64)] {
        let log = log.clone();
        sim.spawn(name, move |ctx| {
            for _ in 0..3 {
                ctx.sleep(SimDuration::from_nanos(step));
                log.lock().push((ctx.now().as_nanos(), name));
            }
        });
    }
    sim.run_expect();
    let got = log.lock().clone();
    assert_eq!(
        got,
        vec![(3, "a"), (5, "b"), (6, "a"), (9, "a"), (10, "b"), (15, "b"),]
    );
}

#[test]
fn equal_time_events_fire_in_schedule_order() {
    let log: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new();
    for i in 0..8 {
        let log = log.clone();
        sim.spawn(format!("p{i}"), move |ctx| {
            ctx.sleep(SimDuration::from_nanos(100));
            log.lock().push(i);
        });
    }
    sim.run_expect();
    assert_eq!(log.lock().clone(), (0..8).collect::<Vec<_>>());
}

#[test]
fn determinism_across_runs() {
    fn run_once() -> Vec<(u64, usize)> {
        let log: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let ev = SimEvent::new();
        let counter = Arc::new(Mutex::new(0u32));
        for i in 0..5 {
            let log = log.clone();
            let ev = ev.clone();
            let counter = counter.clone();
            sim.spawn(format!("w{i}"), move |ctx| {
                ctx.sleep(SimDuration::from_nanos(10 * (i as u64 % 3)));
                loop {
                    let seen = ev.epoch();
                    if *counter.lock() >= i as u32 {
                        break;
                    }
                    ctx.wait_event(&ev, seen, "counter");
                }
                *counter.lock() += 1;
                let sched = ctx.scheduler();
                ev.notify_all(&sched);
                log.lock().push((ctx.now().as_nanos(), i));
            });
        }
        sim.run_expect();
        let out = log.lock().clone();
        out
    }
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b);
    assert_eq!(a.len(), 5);
}

#[test]
fn completion_wakes_waiter_at_exact_time() {
    let mut sim = Simulation::new();
    let c = Completion::new();
    let c2 = c.clone();
    sim.spawn("waiter", move |ctx| {
        ctx.wait(&c2);
        assert_eq!(ctx.now().as_nanos(), 777);
    });
    let c3 = c.clone();
    sim.spawn("signaler", move |ctx| {
        let sched = ctx.scheduler();
        c3.complete_at(&sched, SimTime(777));
    });
    sim.run_expect();
}

#[test]
fn wait_on_already_done_completion_returns_immediately() {
    let mut sim = Simulation::new();
    let c = Completion::new();
    let c2 = c.clone();
    sim.spawn("p", move |ctx| {
        let sched = ctx.scheduler();
        c2.complete_now(&sched);
        ctx.wait(&c2);
        assert_eq!(ctx.now(), SimTime::ZERO);
    });
    sim.run_expect();
}

#[test]
fn multiple_waiters_on_one_completion() {
    let mut sim = Simulation::new();
    let c = Completion::new();
    let hits = Arc::new(Mutex::new(0u32));
    for i in 0..4 {
        let c = c.clone();
        let hits = hits.clone();
        sim.spawn(format!("w{i}"), move |ctx| {
            ctx.wait(&c);
            assert_eq!(ctx.now().as_nanos(), 42);
            *hits.lock() += 1;
        });
    }
    let c2 = c.clone();
    sim.spawn("sig", move |ctx| {
        let sched = ctx.scheduler();
        c2.complete_at(&sched, SimTime(42));
    });
    sim.run_expect();
    assert_eq!(*hits.lock(), 4);
}

#[test]
fn mailbox_transfers_between_processes() {
    let mut sim = Simulation::new();
    let mb: Mailbox<u64> = Mailbox::new();
    let tx = mb.clone();
    sim.spawn("producer", move |ctx| {
        for i in 0..10 {
            ctx.sleep(SimDuration::from_nanos(100));
            let sched = ctx.scheduler();
            tx.send(&sched, i);
        }
    });
    let rx = mb.clone();
    let got = Arc::new(Mutex::new(Vec::new()));
    let got2 = got.clone();
    sim.spawn("consumer", move |ctx| {
        for _ in 0..10 {
            let v = rx.recv(ctx);
            got2.lock().push((ctx.now().as_nanos(), v));
        }
    });
    sim.run_expect();
    let got = got.lock().clone();
    assert_eq!(got.len(), 10);
    for (i, (t, v)) in got.iter().enumerate() {
        assert_eq!(*v, i as u64);
        assert_eq!(*t, 100 * (i as u64 + 1));
    }
}

#[test]
fn deadlock_is_reported_with_names_and_reasons() {
    let mut sim = Simulation::new();
    let c = Completion::new();
    let c2 = c.clone();
    sim.spawn("stuck-rank", move |ctx| {
        ctx.wait_reason(&c2, "recv from rank 1");
    });
    match sim.run() {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert_eq!(blocked.len(), 1);
            assert_eq!(blocked[0].name, "stuck-rank");
            assert_eq!(blocked[0].reason, "recv from rank 1");
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn process_panic_is_captured() {
    let mut sim = Simulation::new();
    sim.spawn("bad", |_ctx| {
        panic!("protocol violation xyz");
    });
    match sim.run() {
        Err(SimError::ProcessPanic { name, message }) => {
            assert_eq!(name, "bad");
            assert!(message.contains("protocol violation xyz"));
        }
        other => panic!("expected panic error, got {other:?}"),
    }
}

#[test]
fn event_limit_catches_livelock() {
    let mut sim = Simulation::new();
    sim.set_event_limit(1000);
    sim.spawn("spinner", |ctx| loop {
        ctx.yield_now();
    });
    match sim.run() {
        Err(SimError::EventLimit { limit, .. }) => assert_eq!(limit, 1000),
        other => panic!("expected event limit, got {other:?}"),
    }
}

#[test]
fn spawn_from_within_process() {
    let mut sim = Simulation::new();
    let total = Arc::new(Mutex::new(0u32));
    let total2 = total.clone();
    sim.spawn("parent", move |ctx| {
        ctx.sleep(SimDuration::from_nanos(10));
        for i in 0..3 {
            let total = total2.clone();
            ctx.spawn(format!("child{i}"), move |cctx| {
                cctx.sleep(SimDuration::from_nanos(5));
                *total.lock() += 1;
            });
        }
    });
    let report = sim.run_expect();
    assert_eq!(*total.lock(), 3);
    assert_eq!(report.final_time.as_nanos(), 15);
}

#[test]
fn scheduler_call_after_runs_at_offset() {
    let mut sim = Simulation::new();
    let hit = Arc::new(Mutex::new(None));
    let hit2 = hit.clone();
    sim.spawn("p", move |ctx| {
        let sched = ctx.scheduler();
        let hit3 = hit2.clone();
        sched.call_after(SimDuration::from_micros(2), move |s| {
            *hit3.lock() = Some(s.now());
        });
        ctx.sleep(SimDuration::from_micros(5));
    });
    sim.run_expect();
    assert_eq!(hit.lock().unwrap(), SimTime(2_000));
}

#[test]
fn yield_now_lets_same_time_peers_run() {
    let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new();
    let l1 = log.clone();
    sim.spawn("first", move |ctx| {
        l1.lock().push("first-before");
        ctx.yield_now();
        l1.lock().push("first-after");
    });
    let l2 = log.clone();
    sim.spawn("second", move |_ctx| {
        l2.lock().push("second");
    });
    sim.run_expect();
    assert_eq!(
        log.lock().clone(),
        vec!["first-before", "second", "first-after"]
    );
}

#[test]
fn trace_hook_receives_messages() {
    let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new();
    let l2 = lines.clone();
    sim.set_trace(move |t, msg| l2.lock().push(format!("{}:{msg}", t.as_nanos())));
    sim.spawn("p", |ctx| {
        ctx.sleep(SimDuration::from_nanos(9));
        ctx.trace("hello");
    });
    sim.run_expect();
    assert_eq!(lines.lock().clone(), vec!["9:hello".to_string()]);
}

/// Mixed wake + device-callback workload, heavy enough (300 procs) to push
/// the queued-event count past the staging threshold. Returns the full
/// observable trace plus the processed-event count.
fn sharded_trace(shards: usize) -> (Vec<(u64, usize, u32)>, u64) {
    let log: Arc<Mutex<Vec<(u64, usize, u32)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new();
    sim.set_shards(shards, SimDuration::from_nanos(700));
    let n = 300;
    for i in 0..n {
        let log = log.clone();
        let pid = sim.spawn(format!("p{i}"), move |ctx| {
            for round in 0..6u32 {
                let d = 1 + ((i as u64 * 7 + u64::from(round) * 13) % 97);
                ctx.sleep(SimDuration::from_nanos(d));
                log.lock().push((ctx.now().as_nanos(), i, round));
                if round == 2 {
                    // Device callback: exercises `Call` event shard routing.
                    let log = log.clone();
                    let sched = ctx.scheduler();
                    sched.call_after(SimDuration::from_nanos(50), move |s| {
                        log.lock().push((s.now().as_nanos(), i, 99));
                    });
                }
            }
        });
        sim.assign_shard(pid, i % 8);
    }
    let report = sim.run_expect();
    let trace = log.lock().clone();
    (trace, report.events_processed)
}

#[test]
fn sharded_run_matches_unsharded() {
    let (t1, e1) = sharded_trace(1);
    let (t4, e4) = sharded_trace(4);
    let (t8, e8) = sharded_trace(8);
    assert_eq!(t1.len(), 300 * 7);
    assert_eq!(t1, t4);
    assert_eq!(t1, t8);
    assert_eq!(e1, e4);
    assert_eq!(e1, e8);
}

#[test]
fn set_shards_rehomes_pending_events() {
    let mut sim = Simulation::new();
    let hit = Arc::new(Mutex::new(false));
    let hit2 = hit.clone();
    let sched = sim.scheduler();
    sched.call_after(SimDuration::from_nanos(10), move |_| {
        *hit2.lock() = true;
    });
    sim.set_shards(4, SimDuration::from_nanos(100));
    assert_eq!(sim.shards(), 4);
    sim.set_shards(2, SimDuration::from_nanos(100));
    assert_eq!(sim.shards(), 2);
    sim.spawn("p", |ctx| ctx.sleep(SimDuration::from_nanos(20)));
    sim.run_expect();
    assert!(*hit.lock());
}

#[test]
fn many_processes_scale() {
    let mut sim = Simulation::new();
    let n = 256;
    let done = Arc::new(Mutex::new(0u32));
    for i in 0..n {
        let done = done.clone();
        sim.spawn(format!("p{i}"), move |ctx| {
            for _ in 0..10 {
                ctx.sleep(SimDuration::from_nanos(1 + i as u64));
            }
            *done.lock() += 1;
        });
    }
    sim.run_expect();
    assert_eq!(*done.lock(), n);
}
