//! Property tests for the engine: determinism under arbitrary schedules,
//! time monotonicity, and completion/event semantics.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use simcore::{Completion, SimDuration, SimEvent, Simulation};

#[derive(Debug, Clone)]
enum Step {
    Sleep(u16),
    Yield,
    Signal(u8),
    WaitOn(u8),
    Notify(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u16..5000).prop_map(Step::Sleep),
        Just(Step::Yield),
        (0u8..4).prop_map(Step::Signal),
        (0u8..4).prop_map(Step::WaitOn),
        (0u8..4).prop_map(Step::Notify),
    ]
}

/// Run a program of per-process steps; return the event log.
fn run_program(procs: &[Vec<Step>]) -> Vec<(u64, usize, usize)> {
    let mut sim = Simulation::new();
    sim.set_event_limit(200_000);
    let completions: Vec<Completion> = (0..4).map(|_| Completion::new()).collect();
    let events: Vec<SimEvent> = (0..4).map(|_| SimEvent::new()).collect();
    let log: Arc<Mutex<Vec<(u64, usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));

    // A watchdog signals every completion late so WaitOn never deadlocks.
    {
        let completions = completions.clone();
        sim.spawn("watchdog", move |ctx| {
            ctx.sleep(SimDuration::from_millis(100));
            let sched = ctx.scheduler();
            for c in &completions {
                c.complete_now(&sched);
            }
        });
    }

    for (pid, steps) in procs.iter().enumerate() {
        let steps = steps.clone();
        let completions = completions.clone();
        let events = events.clone();
        let log = log.clone();
        sim.spawn(format!("p{pid}"), move |ctx| {
            for (i, step) in steps.iter().enumerate() {
                match step {
                    Step::Sleep(ns) => ctx.sleep(SimDuration::from_nanos(*ns as u64)),
                    Step::Yield => ctx.yield_now(),
                    Step::Signal(k) => {
                        let sched = ctx.scheduler();
                        completions[*k as usize].complete_now(&sched);
                    }
                    Step::WaitOn(k) => ctx.wait(&completions[*k as usize]),
                    Step::Notify(k) => {
                        let sched = ctx.scheduler();
                        events[*k as usize].notify_all(&sched);
                    }
                }
                log.lock().push((ctx.now().as_nanos(), pid, i));
            }
        });
    }
    sim.run_expect();
    let out = log.lock().clone();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn schedules_are_deterministic(
        programs in proptest::collection::vec(
            proptest::collection::vec(step_strategy(), 0..12),
            1..5,
        )
    ) {
        let a = run_program(&programs);
        let b = run_program(&programs);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn per_process_time_is_monotone(
        programs in proptest::collection::vec(
            proptest::collection::vec(step_strategy(), 0..12),
            1..5,
        )
    ) {
        let log = run_program(&programs);
        for pid in 0..programs.len() {
            let times: Vec<u64> = log.iter().filter(|(_, p, _)| *p == pid).map(|(t, _, _)| *t).collect();
            for w in times.windows(2) {
                prop_assert!(w[0] <= w[1], "time went backwards for p{pid}: {:?}", w);
            }
        }
    }

    #[test]
    fn all_steps_execute(
        programs in proptest::collection::vec(
            proptest::collection::vec(step_strategy(), 0..12),
            1..5,
        )
    ) {
        let log = run_program(&programs);
        let expected: usize = programs.iter().map(|p| p.len()).sum();
        prop_assert_eq!(log.len(), expected);
    }
}
