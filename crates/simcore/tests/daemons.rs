//! Daemon-process semantics: daemons neither keep the simulation alive nor
//! count as deadlocked, but still serve requests while regular processes
//! run.

use std::sync::Arc;

use parking_lot::Mutex;
use simcore::{Mailbox, SimDuration, SimError, Simulation};

#[test]
fn blocked_daemon_does_not_keep_simulation_alive() {
    let mut sim = Simulation::new();
    let mb: Mailbox<u32> = Mailbox::new();
    let mb2 = mb.clone();
    sim.spawn_daemon("server", move |ctx| loop {
        let _ = mb2.recv(ctx); // blocks forever once the queue drains
    });
    sim.spawn("client", |ctx| {
        ctx.sleep(SimDuration::from_micros(5));
    });
    let report = sim.run_expect();
    assert_eq!(report.final_time.as_nanos(), 5_000);
}

#[test]
fn daemon_serves_requests_then_parks_quietly() {
    let mut sim = Simulation::new();
    let req: Mailbox<u32> = Mailbox::new();
    let resp: Mailbox<u32> = Mailbox::new();
    let (rq, rs) = (req.clone(), resp.clone());
    sim.spawn_daemon("echo-server", move |ctx| loop {
        let v = rq.recv(ctx);
        ctx.sleep(SimDuration::from_micros(1));
        let sched = ctx.scheduler();
        rs.send(&sched, v * 2);
    });
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = got.clone();
    sim.spawn("client", move |ctx| {
        for i in 0..5 {
            let sched = ctx.scheduler();
            req.send(&sched, i);
            let v = resp.recv(ctx);
            g2.lock().push(v);
        }
    });
    sim.run_expect();
    assert_eq!(*got.lock(), vec![0, 2, 4, 6, 8]);
}

#[test]
fn deadlock_report_excludes_daemons() {
    let mut sim = Simulation::new();
    let mb: Mailbox<u32> = Mailbox::new();
    let mb2 = mb.clone();
    sim.spawn_daemon("idle-daemon", move |ctx| {
        let _ = mb2.recv(ctx);
    });
    let other: Mailbox<u32> = Mailbox::new();
    sim.spawn("stuck", move |ctx| {
        let _ = other.recv(ctx); // nobody ever sends
    });
    match sim.run() {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert_eq!(blocked.len(), 1);
            assert_eq!(blocked[0].name, "stuck");
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn daemon_spawned_from_daemon_works() {
    let mut sim = Simulation::new();
    let mb: Mailbox<u32> = Mailbox::new();
    let mb2 = mb.clone();
    let hits = Arc::new(Mutex::new(0u32));
    let h2 = hits.clone();
    sim.spawn_daemon("acceptor", move |ctx| {
        // Accept one "connection", spawn a handler daemon, park forever.
        let v = mb2.recv(ctx);
        let h3 = h2.clone();
        ctx.scheduler().spawn_daemon("handler", move |hctx| {
            hctx.sleep(SimDuration::from_micros(v as u64));
            *h3.lock() += 1;
        });
        let forever: Mailbox<u32> = Mailbox::new();
        let _ = forever.recv(ctx);
    });
    sim.spawn("client", move |ctx| {
        let sched = ctx.scheduler();
        mb.send(&sched, 3);
        ctx.sleep(SimDuration::from_micros(10));
    });
    sim.run_expect();
    assert_eq!(*hits.lock(), 1);
}
