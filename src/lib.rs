//! Umbrella crate re-exporting the full DCFA-MPI reproduction stack.
//!
//! See the README for an overview and `examples/` for runnable entry points.

pub use apps;
pub use baselines;
pub use dcfa;
pub use dcfa_mpi;
pub use fabric;
pub use scif;
pub use simcore;
pub use verbs;
